//! Parallel design-space exploration over the staged pipeline.
//!
//! The paper's evaluation is fundamentally a sweep over the replication
//! and memory parameters (k, m, PLM sharing, decoupling, array
//! partitioning). With the monolithic flow each of those design points
//! re-ran the frontend and middle end from source; here a [`DseEngine`]
//! compiles source through [`Pipeline::schedule`] exactly once and fans
//! the per-point backend/system stages out across a scoped worker pool.
//!
//! On top of the single-board sweep, [`DseEngine::run_portfolio`] (and
//! its program twin) crosses the grid with a **platform catalog and
//! each platform's fabric-clock ladder**: backends are memoized per
//! (clock, backend options), every combination is costed under its
//! platform's Eq. (3) budget, and the [`PortfolioReport`] marks each
//! platform's Pareto frontier over (simulated time, resource fit) —
//! the heterogeneous-portfolio view: pick the node that fits the job.
//!
//! ```
//! use cfd_core::dse::{DseEngine, DseGrid};
//! use cfd_core::FlowOptions;
//!
//! let src = cfdlang::examples::inverse_helmholtz(4);
//! let engine = DseEngine::prepare(&src, &FlowOptions::default()).unwrap();
//! let grid = DseGrid {
//!     k: vec![1, 2],
//!     batch: vec![1],
//!     sharing: vec![true],
//!     decoupled: vec![true, false],
//!     partition: vec![1],
//! };
//! let report = engine.run(&grid, 2, 1_000);
//! assert_eq!(report.outcomes.len(), 4);
//! // The shared stages ran once, regardless of grid size or jobs.
//! assert_eq!(engine.pipeline().counters().frontend, 1);
//! assert_eq!(engine.pipeline().counters().middle_end, 1);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use sysgen::{Platform, SystemConfig};
use teil::TensorKind;
use zynq::SimConfig;

use crate::cache::{CacheCounters, CompileCache};
use crate::pipeline::{Backend, Pipeline, Scheduled, StageCounts, StageTimings};
use crate::{Artifacts, FlowError, FlowOptions};

/// One point of the exploration grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsePoint {
    /// Accelerator replicas.
    pub k: usize,
    /// PLM systems (`m = 2^j · k`).
    pub m: usize,
    /// Mnemosyne PLM sharing.
    pub sharing: bool,
    /// Temporaries exported to PLMs (decoupled) vs kept inside.
    pub decoupled: bool,
    /// Cyclic partition factor applied to the kernel's largest input
    /// array (1 = no partitioning).
    pub partition: u32,
}

impl DsePoint {
    pub fn label(&self) -> String {
        format!(
            "k={} m={} sharing={} decoupled={} partition={}",
            self.k, self.m, self.sharing, self.decoupled, self.partition
        )
    }

    /// The backend-relevant subset of the point: grid axes that only
    /// differ in system-stage knobs (`k`, `m`) share one compiled
    /// backend (kernel, HLS estimate, memory subsystem).
    fn backend_key(&self) -> BackendKey {
        BackendKey {
            sharing: self.sharing,
            decoupled: self.decoupled,
            partition: self.partition,
        }
    }
}

/// Key identifying a unique backend compilation within a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BackendKey {
    sharing: bool,
    decoupled: bool,
    partition: u32,
}

/// The cartesian exploration grid. `m` is derived as `k · batch`, so
/// every generated point satisfies the paper's power-of-two batching
/// constraint by construction.
#[derive(Debug, Clone)]
pub struct DseGrid {
    pub k: Vec<usize>,
    /// Batch factors (executions per accelerator per round); powers of
    /// two.
    pub batch: Vec<usize>,
    pub sharing: Vec<bool>,
    pub decoupled: Vec<bool>,
    pub partition: Vec<u32>,
}

impl Default for DseGrid {
    /// The paper-shaped default sweep: replication × batching × sharing
    /// × decoupling (32 points).
    fn default() -> Self {
        DseGrid {
            k: vec![1, 2, 4, 8],
            batch: vec![1, 2],
            sharing: vec![true, false],
            decoupled: vec![true, false],
            partition: vec![1],
        }
    }
}

impl DseGrid {
    /// Materialize the grid points (row-major over the option axes).
    pub fn points(&self) -> Vec<DsePoint> {
        let mut out = Vec::new();
        for &k in &self.k {
            for &batch in &self.batch {
                assert!(
                    batch.is_power_of_two(),
                    "batch factors must be powers of two"
                );
                for &sharing in &self.sharing {
                    for &decoupled in &self.decoupled {
                        for &partition in &self.partition {
                            out.push(DsePoint {
                                k,
                                m: k * batch,
                                sharing,
                                decoupled,
                                partition: partition.max(1),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Evaluation result for one design point.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    pub point: DsePoint,
    /// Kernel (or joined program-kernel) name the point was evaluated
    /// on — sweep rows are labelled by name, not bare grid index.
    pub kernel: String,
    /// Whether the configuration fits the board (Eq. 3).
    pub feasible: bool,
    /// System totals including integration logic (0 when infeasible).
    pub luts: usize,
    pub ffs: usize,
    pub dsps: usize,
    pub brams: usize,
    /// Memory-subsystem BRAMs per PLM system.
    pub plm_brams: usize,
    /// Per-kernel latency estimate.
    pub latency_cycles: u64,
    /// Simulated end-to-end time for the report's element count.
    pub total_s: f64,
    /// Elements per second (0 when infeasible).
    pub throughput_eps: f64,
    /// Batched-serving throughput of the design (requests/sec for a
    /// closed backlog of [`SERVICE_PROBE_REQUESTS`] requests, batch
    /// fill `m`, double-buffered DMA; 0 when infeasible) — the
    /// **throughput objective** of the service-level Pareto view.
    pub service_rps: f64,
    /// p99 request latency of the same probe (0 when infeasible).
    pub service_p99_s: f64,
    /// Wall-clock seconds spent evaluating this point.
    pub eval_s: f64,
}

/// Closed-backlog size of the serving probe every feasible design is
/// scored with.
pub const SERVICE_PROBE_REQUESTS: usize = 64;

/// Score a design's serving behavior: requests/sec and p99 latency of a
/// closed backlog of [`SERVICE_PROBE_REQUESTS`] requests under the
/// `Auto` batch policy (fill `m`) with double-buffered DMA. This is a
/// timing-only `runtime::serve` run, so the numbers are by construction
/// the ones `cfdc serve` would report for the same design.
fn service_probe(design: &sysgen::MultiSystemDesign) -> (f64, f64) {
    let opts = runtime::RuntimeOptions {
        requests: SERVICE_PROBE_REQUESTS,
        arrival: runtime::Arrival::Closed,
        batch: runtime::BatchPolicy::Auto,
        overlap_dma: true,
        seed: 0,
        execute: false,
        // Score through the online event loop in its neutral FIFO mode:
        // bit-identical to the offline scheduler by the differential
        // tests, so the numbers are unchanged while the probe exercises
        // the same code path `cfdc serve --online` runs.
        online: runtime::OnlinePolicy {
            event_loop: true,
            ..runtime::OnlinePolicy::default()
        },
        ..runtime::RuntimeOptions::default()
    };
    let requests = runtime::generate_timing_requests(opts.requests, &opts.arrival, opts.seed)
        .expect("closed arrivals never fail");
    let report = runtime::serve(design, &[], &[], &[], &requests, &opts)
        .expect("timing-only probe always serves")
        .report;
    (report.throughput_rps, report.latency_p99_s)
}

/// Ranked sweep results plus the evidence that the shared stages ran
/// only once.
#[derive(Debug, Clone)]
pub struct DseReport {
    /// Outcomes ranked best-first: feasible before infeasible, then by
    /// throughput, then by BRAM and LUT cost.
    pub outcomes: Vec<DseOutcome>,
    pub evaluated: usize,
    pub feasible: usize,
    pub jobs: usize,
    /// Element count every point was simulated with.
    pub elements: usize,
    /// Wall-clock seconds for the whole sweep (excluding `prepare`).
    pub wall_s: f64,
    /// Cost of the shared frontend/middle-end/schedule stages.
    pub shared: StageTimings,
    /// Stage-invocation counters after the sweep.
    pub counts: StageCounts,
    /// Compile-cache counters (all zero for an uncached engine).
    pub cache: CacheCounters,
    /// Polyhedra-oracle counters accumulated over the sweep (delta of
    /// the process totals across `run`).
    pub oracle: polyhedra::OracleCounters,
    /// Unique backend configurations compiled during the sweep.
    pub backend_compiles: usize,
    /// Points that reused a memoized backend instead of recompiling.
    pub backend_reuses: usize,
    /// Wall-clock seconds spent compiling the unique backends.
    pub backend_s: f64,
    /// Sum of per-point evaluation times (system stage + simulation)
    /// across all workers — CPU time, not wall-clock.
    pub eval_total_s: f64,
    /// Mean per-point evaluation time.
    pub eval_mean_s: f64,
    /// Slowest single point.
    pub eval_max_s: f64,
}

impl DseReport {
    /// The best-ranked feasible outcome, if any.
    pub fn best(&self) -> Option<&DseOutcome> {
        self.outcomes.first().filter(|o| o.feasible)
    }

    /// Render as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{} configurations ({} feasible), {} jobs, sweep {:.3} s, shared stages {:.3} s, \
             {} backends compiled ({} reused), point eval {:.3} s total / {:.4} s mean\n",
            self.evaluated,
            self.feasible,
            self.jobs,
            self.wall_s,
            self.shared.total_s(),
            self.backend_compiles,
            self.backend_reuses,
            self.eval_total_s,
            self.eval_mean_s,
        ));
        let name_w = self
            .outcomes
            .iter()
            .map(|o| o.kernel.len())
            .max()
            .unwrap_or(6)
            .max(6);
        s.push_str(&format!(
            "  {:<name_w$}   k    m  share  decouple  part      LUT      FF   DSP   BRAM    el/s   req/s  feasible\n",
            "kernel"
        ));
        for o in &self.outcomes {
            let p = &o.point;
            s.push_str(&format!(
                "  {:<name_w$}  {:>2}  {:>3}  {:>5}  {:>8}  {:>4}  {:>7}  {:>6}  {:>4}  {:>5}  {:>6.0}  {:>6.0}  {}\n",
                o.kernel,
                p.k,
                p.m,
                p.sharing,
                p.decoupled,
                p.partition,
                o.luts,
                o.ffs,
                o.dsps,
                o.brams,
                o.throughput_eps,
                o.service_rps,
                if o.feasible { "yes" } else { "no" },
            ));
        }
        s
    }

    /// Serialize the report as JSON (hand-rolled: the dependency set has
    /// no serde_json).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"evaluated\": {},\n", self.evaluated));
        s.push_str(&format!("  \"feasible\": {},\n", self.feasible));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"elements\": {},\n", self.elements));
        s.push_str(&format!("  \"wall_s\": {:.6},\n", self.wall_s));
        s.push_str(&format!(
            "  \"shared_stages\": {{\"frontend_s\": {:.6}, \"middle_end_s\": {:.6}, \"schedule_s\": {:.6}}},\n",
            self.shared.frontend_s, self.shared.middle_end_s, self.shared.schedule_s
        ));
        s.push_str(&format!(
            "  \"stage_invocations\": {{\"frontend\": {}, \"middle_end\": {}, \"schedule\": {}, \"backend\": {}, \"system\": {}}},\n",
            self.counts.frontend,
            self.counts.middle_end,
            self.counts.schedule,
            self.counts.backend,
            self.counts.system
        ));
        s.push_str(&format!(
            "  \"backend_cache\": {{\"compiles\": {}, \"reuses\": {}, \"compile_s\": {:.6}}},\n",
            self.backend_compiles, self.backend_reuses, self.backend_s
        ));
        s.push_str(&format!(
            "  \"compile_cache\": {{\"hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"stores\": {}, \"invalidations\": {}}},\n",
            self.cache.hits,
            self.cache.disk_hits,
            self.cache.misses,
            self.cache.stores,
            self.cache.invalidations
        ));
        s.push_str(&format!("  \"polyhedra\": {},\n", self.oracle.json()));
        s.push_str(&format!(
            "  \"eval_timing\": {{\"total_s\": {:.6}, \"mean_s\": {:.6}, \"max_s\": {:.6}}},\n",
            self.eval_total_s, self.eval_mean_s, self.eval_max_s
        ));
        s.push_str("  \"outcomes\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let p = &o.point;
            s.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"k\": {}, \"m\": {}, \"sharing\": {}, \"decoupled\": {}, \"partition\": {}, \
                 \"feasible\": {}, \"luts\": {}, \"ffs\": {}, \"dsps\": {}, \"brams\": {}, \
                 \"plm_brams\": {}, \"latency_cycles\": {}, \"total_s\": {:.6}, \"throughput_eps\": {:.3}, \
                 \"service_rps\": {:.3}, \"service_p99_s\": {:.6}, \"eval_s\": {:.6}}}{}\n",
                runtime::json_escape(&o.kernel),
                p.k,
                p.m,
                p.sharing,
                p.decoupled,
                p.partition,
                o.feasible,
                o.luts,
                o.ffs,
                o.dsps,
                o.brams,
                o.plm_brams,
                o.latency_cycles,
                o.total_s,
                o.throughput_eps,
                o.service_rps,
                o.service_p99_s,
                o.eval_s,
                if i + 1 == self.outcomes.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// The exploration engine: source is compiled through the scheduling
/// stage exactly once at [`DseEngine::prepare`]; every design point then
/// reuses the shared [`Scheduled`] artifacts.
#[derive(Debug)]
pub struct DseEngine {
    pipeline: Pipeline,
    base: FlowOptions,
    scheduled: Scheduled,
    frontend_s: f64,
    /// Kernel name the sweep rows are labelled with.
    kernel_name: String,
    /// Name of the kernel's largest input array: the target for the
    /// `partition` axis of the grid.
    partition_target: Option<String>,
}

impl DseEngine {
    /// Compile the shared stages (frontend → middle end → schedule) once.
    /// `base` supplies everything the grid does not vary: scheduler and
    /// canonicalization options, board, HLS clock, element count.
    /// Multi-kernel sources are rejected — use [`ProgramDseEngine`].
    pub fn prepare(source: &str, base: &FlowOptions) -> Result<DseEngine, FlowError> {
        DseEngine::prepare_on(Pipeline::new(), source, base)
    }

    /// Like [`DseEngine::prepare`], with the shared stages memoized
    /// through a [`CompileCache`] — a warm cache skips the scheduling
    /// stage entirely, so repeated explorations of unchanged source pay
    /// only frontend + middle end.
    pub fn prepare_cached(
        source: &str,
        base: &FlowOptions,
        cache: std::sync::Arc<CompileCache>,
    ) -> Result<DseEngine, FlowError> {
        DseEngine::prepare_on(Pipeline::with_cache(cache), source, base)
    }

    fn prepare_on(
        pipeline: Pipeline,
        source: &str,
        base: &FlowOptions,
    ) -> Result<DseEngine, FlowError> {
        let set = cfdlang::parse_set(source)?;
        if set.is_multi() {
            return Err(FlowError::Backend(
                "multi-kernel program source: use ProgramDseEngine for joint sweeps".into(),
            ));
        }
        let kernel_name = set
            .kernels
            .first()
            .map(|k| k.name.clone())
            .unwrap_or_else(|| "main".to_string());
        let fe = pipeline.frontend(source)?;
        let me = pipeline.middle_end(&fe, base)?;
        let sc = pipeline.schedule(&me, base);
        let module = &sc.middle.module;
        let partition_target = module
            .of_kind(TensorKind::Input)
            .into_iter()
            .max_by_key(|&id| module.shape(id).iter().product::<usize>())
            .map(|id| module.name(id).to_string());
        Ok(DseEngine {
            pipeline,
            base: base.clone(),
            scheduled: sc,
            frontend_s: fe.elapsed_s,
            kernel_name,
            partition_target,
        })
    }

    /// Kernel name the sweep is labelled with.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The shared scheduling-stage output every point starts from.
    pub fn scheduled(&self) -> &Scheduled {
        &self.scheduled
    }

    /// Wall-clock cost of the shared stages.
    pub fn shared_timings(&self) -> StageTimings {
        StageTimings {
            frontend_s: self.frontend_s,
            middle_end_s: self.scheduled.middle.elapsed_s,
            schedule_s: self.scheduled.elapsed_s,
            ..Default::default()
        }
    }

    /// The flow options for one design point: the engine's base options
    /// with the point's backend/system axes applied.
    pub fn options_for(&self, point: &DsePoint) -> FlowOptions {
        let mut opts = self.base.clone();
        opts.decoupled = point.decoupled;
        opts.memory.sharing = point.sharing;
        // A factor > 1 overrides the partition set; factor 1 means "as the
        // base options say", so any base partitioning is left untouched.
        if point.partition > 1 {
            if let Some(name) = &self.partition_target {
                opts.hls.partition = vec![(name.clone(), point.partition)];
            }
        }
        opts.system = Some(SystemConfig {
            k: point.k,
            m: point.m,
        });
        opts
    }

    /// Run the backend + system stages for one point and simulate the
    /// result. Never re-runs the shared stages. (Point-wise API: compiles
    /// the point's backend inline; [`DseEngine::run`] memoizes backends
    /// across the grid instead.)
    pub fn evaluate(&self, point: &DsePoint, elements: usize) -> DseOutcome {
        let t = Instant::now();
        let opts = self.options_for(point);
        let be = self.pipeline.backend(&self.scheduled, &opts);
        self.evaluate_with_backend(point, &opts, &be, elements, t)
    }

    /// System stage + simulation for one point against an
    /// already-compiled backend.
    fn evaluate_with_backend(
        &self,
        point: &DsePoint,
        opts: &FlowOptions,
        be: &Backend,
        elements: usize,
        started: Instant,
    ) -> DseOutcome {
        let sys = match self.pipeline.system(be, opts) {
            Ok(sys) => sys.system,
            // DoesNotFit (and any future system-stage error) marks the
            // point infeasible rather than aborting the sweep.
            Err(_) => None,
        };
        match sys {
            Some(design) => {
                let sim = zynq::simulate_hw(
                    &design,
                    &SimConfig {
                        elements,
                        ..Default::default()
                    },
                );
                let (service_rps, service_p99_s) =
                    service_probe(&sysgen::MultiSystemDesign::from_single(&design));
                DseOutcome {
                    point: *point,
                    kernel: self.kernel_name.clone(),
                    feasible: true,
                    luts: design.luts,
                    ffs: design.ffs,
                    dsps: design.dsps,
                    brams: design.brams,
                    plm_brams: be.memory.brams,
                    latency_cycles: be.hls_report.latency_cycles,
                    total_s: sim.total_s,
                    throughput_eps: if sim.total_s > 0.0 {
                        elements as f64 / sim.total_s
                    } else {
                        0.0
                    },
                    service_rps,
                    service_p99_s,
                    eval_s: started.elapsed().as_secs_f64(),
                }
            }
            None => DseOutcome {
                point: *point,
                kernel: self.kernel_name.clone(),
                feasible: false,
                luts: 0,
                ffs: 0,
                dsps: 0,
                brams: 0,
                plm_brams: be.memory.brams,
                latency_cycles: be.hls_report.latency_cycles,
                total_s: 0.0,
                throughput_eps: 0.0,
                service_rps: 0.0,
                service_p99_s: 0.0,
                eval_s: started.elapsed().as_secs_f64(),
            },
        }
    }

    /// Sweep the grid with `jobs` worker threads (0 = one per available
    /// core) and return the ranked report.
    ///
    /// Backends are **memoized on the backend-relevant point subset**
    /// (sharing, decoupling, partitioning): grid points that differ only
    /// in the system-stage knobs `k`/`m` share one compiled kernel, HLS
    /// estimate and memory subsystem. Each worker accumulates outcomes in
    /// its own buffer — no shared lock on the hot path.
    pub fn run(&self, grid: &DseGrid, jobs: usize, elements: usize) -> DseReport {
        let points = grid.points();
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
        } else {
            jobs
        }
        .min(points.len().max(1));
        let oracle_base = polyhedra::OracleCounters::snapshot();
        let t = Instant::now();

        // Unique backend configurations, first-seen order.
        let mut keys: Vec<BackendKey> = Vec::new();
        let mut key_of_point: Vec<usize> = Vec::with_capacity(points.len());
        for p in &points {
            let k = p.backend_key();
            let idx = keys.iter().position(|&e| e == k).unwrap_or_else(|| {
                keys.push(k);
                keys.len() - 1
            });
            key_of_point.push(idx);
        }
        // Representative options per key (k/m axes are irrelevant to the
        // backend stage).
        let key_opts: Vec<FlowOptions> = keys
            .iter()
            .map(|k| {
                let rep = points
                    .iter()
                    .find(|p| p.backend_key() == *k)
                    .expect("key from points");
                self.options_for(rep)
            })
            .collect();

        // Compile the unique backends on the worker pool: worker `w`
        // takes keys w, w+stride, ... and returns them with their index.
        let t_backend = Instant::now();
        let backends: Vec<Backend> = {
            let workers = jobs.min(keys.len()).max(1);
            let mut indexed: Vec<(usize, Backend)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let key_opts = &key_opts;
                        scope.spawn(move || {
                            (w..key_opts.len())
                                .step_by(workers)
                                .map(|i| (i, self.pipeline.backend(&self.scheduled, &key_opts[i])))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("backend worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, be)| be).collect()
        };
        let backend_s = t_backend.elapsed().as_secs_f64();

        // Fan the system stage + simulation out over the points, one
        // outcome buffer per worker.
        let next = AtomicUsize::new(0);
        let mut outcomes: Vec<DseOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(jobs);
            for _ in 0..jobs {
                let next = &next;
                let points = &points;
                let key_of_point = &key_of_point;
                let key_opts = &key_opts;
                let backends = &backends;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<DseOutcome> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= points.len() {
                            break local;
                        }
                        let started = Instant::now();
                        let ki = key_of_point[i];
                        // The representative options only differ from the
                        // point's in k/m — pass the point's own system
                        // config through.
                        let mut opts = key_opts[ki].clone();
                        opts.system = Some(sysgen::SystemConfig {
                            k: points[i].k,
                            m: points[i].m,
                        });
                        local.push(self.evaluate_with_backend(
                            &points[i],
                            &opts,
                            &backends[ki],
                            elements,
                            started,
                        ));
                    }
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        outcomes.sort_by(|a, b| {
            b.feasible
                .cmp(&a.feasible)
                .then(b.throughput_eps.total_cmp(&a.throughput_eps))
                .then(a.brams.cmp(&b.brams))
                .then(a.luts.cmp(&b.luts))
                .then(a.point.label().cmp(&b.point.label()))
        });
        let feasible = outcomes.iter().filter(|o| o.feasible).count();
        let eval_total_s: f64 = outcomes.iter().map(|o| o.eval_s).sum();
        let eval_max_s = outcomes.iter().map(|o| o.eval_s).fold(0.0, f64::max);
        DseReport {
            evaluated: outcomes.len(),
            feasible,
            jobs,
            elements,
            wall_s: t.elapsed().as_secs_f64(),
            shared: self.shared_timings(),
            counts: self.pipeline.counters(),
            cache: self.pipeline.cache_counters(),
            oracle: polyhedra::OracleCounters::snapshot().since(oracle_base),
            backend_compiles: keys.len(),
            backend_reuses: points.len() - keys.len(),
            backend_s,
            eval_total_s,
            eval_mean_s: if outcomes.is_empty() {
                0.0
            } else {
                eval_total_s / outcomes.len() as f64
            },
            eval_max_s,
            outcomes,
        }
    }

    /// Build full [`Artifacts`] for one option combination on top of the
    /// shared stages — the cheap replacement for `Flow::compile` when
    /// only backend/system options differ from the engine's base (the
    /// canonicalization and scheduler axes are taken from the base, not
    /// from `opts`).
    pub fn artifacts_for(&self, opts: &FlowOptions) -> Result<Artifacts, FlowError> {
        let be = self.pipeline.backend(&self.scheduled, opts);
        let sys = self.pipeline.system(&be, opts)?;
        let fe = crate::pipeline::Frontend {
            typed: std::sync::Arc::clone(&self.scheduled.middle.typed),
            elapsed_s: self.frontend_s,
        };
        Ok(Artifacts::assemble(&fe, &self.scheduled, be, sys, opts))
    }
}

/// Joint design-space exploration over a **multi-kernel program**: one
/// grid point fixes the backend axes (sharing, decoupling, partitioning)
/// for *every* kernel plus a uniform replication `k`/`m`, and the whole
/// chain is costed under the shared board budget. The per-kernel shared
/// stages (frontend, middle end, schedule, link) run once at
/// [`ProgramDseEngine::prepare`]; backends are memoized on
/// **(kernel, backend key)** — the existing single-kernel memoization,
/// keyed additionally by kernel.
#[derive(Debug)]
pub struct ProgramDseEngine {
    pipeline: Pipeline,
    base: crate::program::ProgramOptions,
    names: Vec<String>,
    scheds: Vec<Scheduled>,
    cross: std::sync::Arc<pschedule::CrossLiveness>,
    /// Largest input array per kernel (the `partition` axis target).
    partition_targets: Vec<Option<String>>,
    shared: StageTimings,
}

impl ProgramDseEngine {
    /// Compile every kernel's shared stages plus the link stage once.
    pub fn prepare(
        source: &str,
        base: &crate::program::ProgramOptions,
    ) -> Result<ProgramDseEngine, FlowError> {
        ProgramDseEngine::prepare_on(Pipeline::new(), source, base)
    }

    /// Like [`ProgramDseEngine::prepare`], with every kernel's shared
    /// stages memoized through a [`CompileCache`].
    pub fn prepare_cached(
        source: &str,
        base: &crate::program::ProgramOptions,
        cache: std::sync::Arc<CompileCache>,
    ) -> Result<ProgramDseEngine, FlowError> {
        ProgramDseEngine::prepare_on(Pipeline::with_cache(cache), source, base)
    }

    fn prepare_on(
        pipeline: Pipeline,
        source: &str,
        base: &crate::program::ProgramOptions,
    ) -> Result<ProgramDseEngine, FlowError> {
        let fronts = pipeline.program_frontend(source)?;
        let names: Vec<String> = fronts.iter().map(|(n, _)| n.clone()).collect();
        let kopts = FlowOptions {
            system: None,
            ..base.flow.clone()
        };
        let mut scheds = Vec::with_capacity(fronts.len());
        for (_, fe) in &fronts {
            let me = pipeline.middle_end(fe, &kopts)?;
            scheds.push(pipeline.schedule(&me, &kopts));
        }
        let link = pipeline.link(&names, &scheds)?;
        let partition_targets: Vec<Option<String>> = scheds
            .iter()
            .map(|sc| {
                let module = &sc.middle.module;
                module
                    .of_kind(TensorKind::Input)
                    .into_iter()
                    .max_by_key(|&id| module.shape(id).iter().product::<usize>())
                    .map(|id| module.name(id).to_string())
            })
            .collect();
        let shared = StageTimings {
            frontend_s: fronts.iter().map(|(_, f)| f.elapsed_s).sum(),
            middle_end_s: scheds.iter().map(|s| s.middle.elapsed_s).sum(),
            schedule_s: scheds.iter().map(|s| s.elapsed_s).sum(),
            link_s: link.elapsed_s,
            ..Default::default()
        };
        Ok(ProgramDseEngine {
            pipeline,
            base: base.clone(),
            names,
            scheds,
            cross: link.cross,
            partition_targets,
            shared,
        })
    }

    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Kernel names in execution order.
    pub fn kernel_names(&self) -> &[String] {
        &self.names
    }

    /// The joint label sweep rows carry.
    pub fn program_label(&self) -> String {
        self.names.join("+")
    }

    /// Per-kernel backend options for one grid point.
    fn kernel_options_for(&self, point: &DsePoint, kernel: usize) -> FlowOptions {
        let mut opts = self.base.flow.clone();
        opts.system = None;
        opts.decoupled = point.decoupled;
        opts.memory.sharing = point.sharing;
        if point.partition > 1 {
            if let Some(name) = &self.partition_targets[kernel] {
                opts.hls.partition = vec![(name.clone(), point.partition)];
            }
        }
        opts
    }

    /// Evaluate one joint point against already-compiled per-kernel
    /// backends. System costs come from the same [`ProgramBuild`]
    /// construction `ProgramFlow::compile` uses, so sweep rankings
    /// always match what a real compile would build.
    fn evaluate_with_backends(
        &self,
        platform: &Platform,
        point: &DsePoint,
        backends: &[Backend],
        elements: usize,
        started: Instant,
    ) -> DseOutcome {
        let cross_sharing = self.base.cross_sharing && point.sharing;
        let memory_opts = {
            let mut m = self.base.flow.memory.clone();
            m.sharing = point.sharing;
            m
        };
        let brefs: Vec<&Backend> = backends.iter().collect();
        let build = crate::program::ProgramBuild::prepare(
            &self.names,
            &self.cross,
            &brefs,
            &memory_opts,
            cross_sharing,
        );
        let cfg = sysgen::ProgramSystemConfig::uniform(point.k, point.m, self.names.len());
        let memory_brams = build.memory.brams;
        let design = build.design_for(platform, cfg);
        let latency_cycles: u64 = backends.iter().map(|b| b.hls_report.latency_cycles).sum();
        match design {
            Some(design) => {
                let sim = zynq::simulate_program(
                    &design,
                    &SimConfig {
                        elements,
                        ..Default::default()
                    },
                );
                let (service_rps, service_p99_s) = service_probe(&design);
                DseOutcome {
                    point: *point,
                    kernel: self.program_label(),
                    feasible: true,
                    luts: design.luts,
                    ffs: design.ffs,
                    dsps: design.dsps,
                    brams: design.brams,
                    plm_brams: memory_brams,
                    latency_cycles,
                    total_s: sim.total_s,
                    throughput_eps: if sim.total_s > 0.0 {
                        elements as f64 / sim.total_s
                    } else {
                        0.0
                    },
                    service_rps,
                    service_p99_s,
                    eval_s: started.elapsed().as_secs_f64(),
                }
            }
            None => DseOutcome {
                point: *point,
                kernel: self.program_label(),
                feasible: false,
                luts: 0,
                ffs: 0,
                dsps: 0,
                brams: 0,
                plm_brams: memory_brams,
                latency_cycles,
                total_s: 0.0,
                throughput_eps: 0.0,
                service_rps: 0.0,
                service_p99_s: 0.0,
                eval_s: started.elapsed().as_secs_f64(),
            },
        }
    }

    /// Evaluate one joint point (compiles the point's backends inline;
    /// [`ProgramDseEngine::run`] memoizes them across the grid).
    pub fn evaluate(&self, point: &DsePoint, elements: usize) -> DseOutcome {
        let t = Instant::now();
        let backends: Vec<Backend> = (0..self.scheds.len())
            .map(|ki| {
                self.pipeline
                    .backend(&self.scheds[ki], &self.kernel_options_for(point, ki))
            })
            .collect();
        self.evaluate_with_backends(&self.base.flow.platform, point, &backends, elements, t)
    }

    /// Sweep the grid with `jobs` workers. Backends are memoized on
    /// (kernel, sharing, decoupled, partition): the default 32-point
    /// grid over a 3-kernel program compiles 12 backends.
    pub fn run(&self, grid: &DseGrid, jobs: usize, elements: usize) -> DseReport {
        let points = grid.points();
        let nk = self.scheds.len();
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
        } else {
            jobs
        }
        .min(points.len().max(1));
        let oracle_base = polyhedra::OracleCounters::snapshot();
        let t = Instant::now();

        // Unique backend keys, first-seen order.
        let mut keys: Vec<BackendKey> = Vec::new();
        let mut key_of_point: Vec<usize> = Vec::with_capacity(points.len());
        for p in &points {
            let k = p.backend_key();
            let idx = keys.iter().position(|&e| e == k).unwrap_or_else(|| {
                keys.push(k);
                keys.len() - 1
            });
            key_of_point.push(idx);
        }

        // Compile (key × kernel) backends on the worker pool.
        let t_backend = Instant::now();
        let jobs_be = jobs.min(keys.len() * nk).max(1);
        let backends: Vec<Vec<Backend>> = {
            let reps: Vec<DsePoint> = keys
                .iter()
                .map(|k| {
                    *points
                        .iter()
                        .find(|p| p.backend_key() == *k)
                        .expect("key from points")
                })
                .collect();
            let mut indexed: Vec<(usize, Backend)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs_be)
                    .map(|w| {
                        let reps = &reps;
                        scope.spawn(move || {
                            (w..reps.len() * nk)
                                .step_by(jobs_be)
                                .map(|i| {
                                    let (key, kernel) = (i / nk, i % nk);
                                    let opts = self.kernel_options_for(&reps[key], kernel);
                                    (i, self.pipeline.backend(&self.scheds[kernel], &opts))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("backend worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(i, _)| *i);
            let mut flat = indexed.into_iter().map(|(_, b)| b);
            (0..keys.len())
                .map(|_| (0..nk).map(|_| flat.next().expect("backend")).collect())
                .collect()
        };
        let backend_s = t_backend.elapsed().as_secs_f64();

        // Fan the program system stage + chained simulation out.
        let next = AtomicUsize::new(0);
        let mut outcomes: Vec<DseOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(jobs);
            for _ in 0..jobs {
                let next = &next;
                let points = &points;
                let key_of_point = &key_of_point;
                let backends = &backends;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<DseOutcome> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= points.len() {
                            break local;
                        }
                        let started = Instant::now();
                        local.push(self.evaluate_with_backends(
                            &self.base.flow.platform,
                            &points[i],
                            &backends[key_of_point[i]],
                            elements,
                            started,
                        ));
                    }
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        outcomes.sort_by(|a, b| {
            b.feasible
                .cmp(&a.feasible)
                .then(b.throughput_eps.total_cmp(&a.throughput_eps))
                .then(a.brams.cmp(&b.brams))
                .then(a.luts.cmp(&b.luts))
                .then(a.point.label().cmp(&b.point.label()))
        });
        let feasible = outcomes.iter().filter(|o| o.feasible).count();
        let eval_total_s: f64 = outcomes.iter().map(|o| o.eval_s).sum();
        let eval_max_s = outcomes.iter().map(|o| o.eval_s).fold(0.0, f64::max);
        DseReport {
            evaluated: outcomes.len(),
            feasible,
            jobs,
            elements,
            wall_s: t.elapsed().as_secs_f64(),
            shared: self.shared,
            counts: self.pipeline.counters(),
            cache: self.pipeline.cache_counters(),
            oracle: polyhedra::OracleCounters::snapshot().since(oracle_base),
            backend_compiles: keys.len() * nk,
            backend_reuses: (points.len() - keys.len()) * nk,
            backend_s,
            eval_total_s,
            eval_mean_s: if outcomes.is_empty() {
                0.0
            } else {
                eval_total_s / outcomes.len() as f64
            },
            eval_max_s,
            outcomes,
        }
    }
}

// ---------------------------------------------------------------------
// Multi-board portfolio exploration
// ---------------------------------------------------------------------

/// One platform × clock × grid-point outcome of a portfolio sweep.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Catalog id of the platform (`zcu106`, `pynq-z2`, ...).
    pub platform: String,
    /// Display name of the board.
    pub board: String,
    /// Fabric clock the kernel was synthesized at (from the platform's
    /// achievable ladder).
    pub clock_mhz: f64,
    pub outcome: DseOutcome,
    /// Largest resource-utilization fraction across LUT/FF/DSP/BRAM —
    /// the "fit" axis of the Pareto frontier (0 when infeasible).
    pub utilization: f64,
    /// Whether this point sits on its platform's Pareto frontier of
    /// (simulated time, utilization). The portfolio frontier is the
    /// union over platforms — pick the node that fits the job.
    pub pareto: bool,
    /// Whether this point sits on its platform's **service** Pareto
    /// frontier — maximize requests/sec against minimizing p99 latency
    /// and utilization (the throughput objective: pick the node that
    /// serves the most traffic per resource).
    pub service_pareto: bool,
}

/// Per-platform feasibility summary of a portfolio sweep.
#[derive(Debug, Clone)]
pub struct PlatformSummary {
    pub platform: String,
    pub board: String,
    /// Grid × clock combinations evaluated on this platform.
    pub evaluated: usize,
    pub feasible: usize,
    /// Points on the platform's time-vs-fit Pareto frontier.
    pub pareto_points: usize,
    /// Best simulated end-to-end time (`None` when nothing fits).
    pub best_total_s: Option<f64>,
}

/// Ranked results of a platform × clock × (k, m) portfolio sweep.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// Outcomes ranked feasible-first, then by simulated time.
    pub outcomes: Vec<PortfolioOutcome>,
    pub summaries: Vec<PlatformSummary>,
    pub evaluated: usize,
    pub feasible: usize,
    pub jobs: usize,
    pub elements: usize,
    pub wall_s: f64,
    /// Unique (clock, backend-option) combinations compiled.
    pub backend_compiles: usize,
    /// Evaluations that reused a memoized backend.
    pub backend_reuses: usize,
    /// Compile-cache counters (all zero for an uncached engine).
    pub cache: CacheCounters,
    /// Polyhedra-oracle counters accumulated over the sweep.
    pub oracle: polyhedra::OracleCounters,
}

/// Pareto flags over (minimize time, minimize utilization) for the
/// feasible subset; infeasible entries are never on the frontier, and
/// of several points with *identical* objectives only the first stays
/// (ties would otherwise all survive and clutter the frontier).
fn pareto_flags(objectives: &[Option<(f64, f64)>]) -> Vec<bool> {
    let mut flags = vec![false; objectives.len()];
    for i in 0..objectives.len() {
        let Some((t, u)) = objectives[i] else {
            continue;
        };
        let dominated = objectives.iter().enumerate().any(|(j, o)| match o {
            Some((t2, u2)) => {
                (*t2 <= t && *u2 <= u && (*t2 < t || *u2 < u)) || (j < i && *t2 == t && *u2 == u)
            }
            None => false,
        });
        flags[i] = !dominated;
    }
    flags
}

/// Three-objective Pareto flags (all minimized; callers negate
/// maximization axes). Same tie rule as [`pareto_flags`]: of identical
/// objective triples only the first survives.
fn pareto_flags3(objectives: &[Option<(f64, f64, f64)>]) -> Vec<bool> {
    let mut flags = vec![false; objectives.len()];
    for i in 0..objectives.len() {
        let Some((a, b, c)) = objectives[i] else {
            continue;
        };
        let dominated = objectives.iter().enumerate().any(|(j, o)| match o {
            Some((a2, b2, c2)) => {
                (*a2 <= a && *b2 <= b && *c2 <= c && (*a2 < a || *b2 < b || *c2 < c))
                    || (j < i && *a2 == a && *b2 == b && *c2 == c)
            }
            None => false,
        });
        flags[i] = !dominated;
    }
    flags
}

impl PortfolioReport {
    /// Rank, flag Pareto points per platform and summarize.
    /// `backend_uses` is the total number of memoized-backend lookups
    /// across all evaluations (one per kernel per combo), so
    /// `reuses = uses - compiles` holds for programs too.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        platforms: &[Platform],
        mut outcomes: Vec<PortfolioOutcome>,
        jobs: usize,
        elements: usize,
        wall_s: f64,
        backend_compiles: usize,
        backend_uses: usize,
        cache: CacheCounters,
        oracle: polyhedra::OracleCounters,
    ) -> PortfolioReport {
        // Per-platform Pareto frontiers: the latency view over
        // (total_s, utilization) and the service view over
        // (requests/sec ↑, p99 ↓, utilization ↓).
        for p in platforms {
            let idx: Vec<usize> = (0..outcomes.len())
                .filter(|&i| outcomes[i].platform == p.id)
                .collect();
            let objectives: Vec<Option<(f64, f64)>> = idx
                .iter()
                .map(|&i| {
                    let o = &outcomes[i];
                    o.outcome
                        .feasible
                        .then_some((o.outcome.total_s, o.utilization))
                })
                .collect();
            for (&i, flag) in idx.iter().zip(pareto_flags(&objectives)) {
                outcomes[i].pareto = flag;
            }
            let service: Vec<Option<(f64, f64, f64)>> = idx
                .iter()
                .map(|&i| {
                    let o = &outcomes[i];
                    o.outcome.feasible.then_some((
                        -o.outcome.service_rps,
                        o.outcome.service_p99_s,
                        o.utilization,
                    ))
                })
                .collect();
            for (&i, flag) in idx.iter().zip(pareto_flags3(&service)) {
                outcomes[i].service_pareto = flag;
            }
        }
        outcomes.sort_by(|a, b| {
            b.outcome
                .feasible
                .cmp(&a.outcome.feasible)
                .then(a.outcome.total_s.total_cmp(&b.outcome.total_s))
                .then(a.utilization.total_cmp(&b.utilization))
                .then(a.platform.cmp(&b.platform))
                .then(a.clock_mhz.total_cmp(&b.clock_mhz))
                .then(a.outcome.point.label().cmp(&b.outcome.point.label()))
        });
        let summaries: Vec<PlatformSummary> = platforms
            .iter()
            .map(|p| {
                let of_p: Vec<&PortfolioOutcome> =
                    outcomes.iter().filter(|o| o.platform == p.id).collect();
                PlatformSummary {
                    platform: p.id.clone(),
                    board: p.board.name.clone(),
                    evaluated: of_p.len(),
                    feasible: of_p.iter().filter(|o| o.outcome.feasible).count(),
                    pareto_points: of_p.iter().filter(|o| o.pareto).count(),
                    best_total_s: of_p
                        .iter()
                        .filter(|o| o.outcome.feasible)
                        .map(|o| o.outcome.total_s)
                        .min_by(f64::total_cmp),
                }
            })
            .collect();
        let feasible = outcomes.iter().filter(|o| o.outcome.feasible).count();
        PortfolioReport {
            evaluated: outcomes.len(),
            feasible,
            jobs,
            elements,
            wall_s,
            backend_compiles,
            backend_reuses: backend_uses.saturating_sub(backend_compiles),
            cache,
            oracle,
            summaries,
            outcomes,
        }
    }

    /// The portfolio Pareto frontier: every platform's non-dominated
    /// (time, fit) points, best time first.
    pub fn pareto_frontier(&self) -> Vec<&PortfolioOutcome> {
        self.outcomes.iter().filter(|o| o.pareto).collect()
    }

    /// The portfolio **service** frontier: every platform's
    /// non-dominated (requests/sec ↑, p99 latency ↓, utilization ↓)
    /// points — where to place traffic for throughput rather than
    /// single-job latency.
    pub fn service_frontier(&self) -> Vec<&PortfolioOutcome> {
        self.outcomes.iter().filter(|o| o.service_pareto).collect()
    }

    /// Platforms with at least one feasible point.
    pub fn feasible_platforms(&self) -> Vec<&PlatformSummary> {
        self.summaries.iter().filter(|s| s.feasible > 0).collect()
    }

    /// The portfolio **cost-efficiency** frontier: non-dominated points
    /// over (requests/sec ↑, requests/sec per 1000 design LUTs ↑) —
    /// which boards earn their silicon when a fleet dispatcher shards
    /// one stream across the catalog. Returned with each point's
    /// req/s-per-kLUT figure, best throughput first (the ranking order
    /// of `outcomes`).
    pub fn cost_frontier(&self) -> Vec<(&PortfolioOutcome, f64)> {
        let per_kluts =
            |o: &PortfolioOutcome| o.outcome.service_rps / (o.outcome.luts as f64 / 1000.0);
        let objectives: Vec<Option<(f64, f64)>> = self
            .outcomes
            .iter()
            .map(|o| {
                (o.outcome.feasible && o.outcome.luts > 0)
                    .then(|| (-o.outcome.service_rps, -per_kluts(o)))
            })
            .collect();
        self.outcomes
            .iter()
            .zip(pareto_flags(&objectives))
            .filter(|(_, flag)| *flag)
            .map(|(o, _)| (o, per_kluts(o)))
            .collect()
    }

    /// Render as an aligned text table (Pareto rows marked `*`).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "portfolio: {} platforms, {} combinations ({} feasible), {} jobs, {:.3} s, \
             {} backends compiled ({} reused)\n",
            self.summaries.len(),
            self.evaluated,
            self.feasible,
            self.jobs,
            self.wall_s,
            self.backend_compiles,
            self.backend_reuses,
        ));
        for sum in &self.summaries {
            s.push_str(&format!(
                "  {:<10} {:<22} {:>3}/{:<3} feasible, {} pareto{}\n",
                sum.platform,
                sum.board,
                sum.feasible,
                sum.evaluated,
                sum.pareto_points,
                match sum.best_total_s {
                    Some(t) => format!(", best {t:.4} s"),
                    None => ", nothing fits".to_string(),
                }
            ));
        }
        s.push_str(
            "    platform     MHz   k    m  share  decouple  part      LUT   BRAM   util%     el/s    req/s  pareto\n",
        );
        for o in &self.outcomes {
            let p = &o.outcome.point;
            s.push_str(&format!(
                "  {} {:<10}  {:>4.0}  {:>2}  {:>3}  {:>5}  {:>8}  {:>4}  {:>7}  {:>5}  {:>6.1}  {:>7.0}  {:>7.0}  {}\n",
                if o.pareto { "*" } else { " " },
                o.platform,
                o.clock_mhz,
                p.k,
                p.m,
                p.sharing,
                p.decoupled,
                p.partition,
                o.outcome.luts,
                o.outcome.brams,
                o.utilization * 100.0,
                o.outcome.throughput_eps,
                o.outcome.service_rps,
                if o.outcome.feasible {
                    match (o.pareto, o.service_pareto) {
                        (true, true) => "pareto+serve",
                        (true, false) => "pareto",
                        (false, true) => "serve",
                        (false, false) => "yes",
                    }
                } else {
                    "no"
                },
            ));
        }
        s
    }

    /// Serialize as JSON (hand-rolled: the dependency set has no
    /// serde_json).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"evaluated\": {},\n", self.evaluated));
        s.push_str(&format!("  \"feasible\": {},\n", self.feasible));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("  \"elements\": {},\n", self.elements));
        s.push_str(&format!("  \"wall_s\": {:.6},\n", self.wall_s));
        s.push_str(&format!(
            "  \"backend_cache\": {{\"compiles\": {}, \"reuses\": {}}},\n",
            self.backend_compiles, self.backend_reuses
        ));
        s.push_str(&format!(
            "  \"compile_cache\": {{\"hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"stores\": {}, \"invalidations\": {}}},\n",
            self.cache.hits,
            self.cache.disk_hits,
            self.cache.misses,
            self.cache.stores,
            self.cache.invalidations
        ));
        s.push_str(&format!("  \"polyhedra\": {},\n", self.oracle.json()));
        s.push_str("  \"platforms\": [\n");
        for (i, p) in self.summaries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"platform\": \"{}\", \"board\": \"{}\", \"evaluated\": {}, \
                 \"feasible\": {}, \"pareto_points\": {}, \"best_total_s\": {}}}{}\n",
                runtime::json_escape(&p.platform),
                runtime::json_escape(&p.board),
                p.evaluated,
                p.feasible,
                p.pareto_points,
                match p.best_total_s {
                    Some(t) => format!("{t:.6}"),
                    None => "null".to_string(),
                },
                if i + 1 == self.summaries.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        s.push_str("  ],\n");
        let frontier = self.pareto_frontier();
        s.push_str("  \"pareto_frontier\": [\n");
        for (i, o) in frontier.iter().enumerate() {
            let p = &o.outcome.point;
            s.push_str(&format!(
                "    {{\"platform\": \"{}\", \"clock_mhz\": {:.1}, \"k\": {}, \"m\": {}, \
                 \"total_s\": {:.6}, \"throughput_eps\": {:.3}, \"utilization\": {:.4}}}{}\n",
                runtime::json_escape(&o.platform),
                o.clock_mhz,
                p.k,
                p.m,
                o.outcome.total_s,
                o.outcome.throughput_eps,
                o.utilization,
                if i + 1 == frontier.len() { "" } else { "," },
            ));
        }
        s.push_str("  ],\n");
        let service = self.service_frontier();
        s.push_str("  \"service_frontier\": [\n");
        for (i, o) in service.iter().enumerate() {
            let p = &o.outcome.point;
            s.push_str(&format!(
                "    {{\"platform\": \"{}\", \"clock_mhz\": {:.1}, \"k\": {}, \"m\": {}, \
                 \"service_rps\": {:.3}, \"service_p99_s\": {:.6}, \"utilization\": {:.4}}}{}\n",
                runtime::json_escape(&o.platform),
                o.clock_mhz,
                p.k,
                p.m,
                o.outcome.service_rps,
                o.outcome.service_p99_s,
                o.utilization,
                if i + 1 == service.len() { "" } else { "," },
            ));
        }
        s.push_str("  ],\n");
        let cost = self.cost_frontier();
        s.push_str("  \"cost_frontier\": [\n");
        for (i, (o, per_kluts)) in cost.iter().enumerate() {
            let p = &o.outcome.point;
            s.push_str(&format!(
                "    {{\"platform\": \"{}\", \"clock_mhz\": {:.1}, \"k\": {}, \"m\": {}, \
                 \"luts\": {}, \"service_rps\": {:.3}, \"rps_per_kluts\": {:.4}}}{}\n",
                runtime::json_escape(&o.platform),
                o.clock_mhz,
                p.k,
                p.m,
                o.outcome.luts,
                o.outcome.service_rps,
                per_kluts,
                if i + 1 == cost.len() { "" } else { "," },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"outcomes\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let p = &o.outcome.point;
            s.push_str(&format!(
                "    {{\"platform\": \"{}\", \"clock_mhz\": {:.1}, \"kernel\": \"{}\", \"k\": {}, \"m\": {}, \
                 \"sharing\": {}, \"decoupled\": {}, \"partition\": {}, \"feasible\": {}, \
                 \"luts\": {}, \"ffs\": {}, \"dsps\": {}, \"brams\": {}, \"plm_brams\": {}, \
                 \"latency_cycles\": {}, \"total_s\": {:.6}, \"throughput_eps\": {:.3}, \
                 \"service_rps\": {:.3}, \"service_p99_s\": {:.6}, \
                 \"utilization\": {:.4}, \"pareto\": {}, \"service_pareto\": {}}}{}\n",
                runtime::json_escape(&o.platform),
                o.clock_mhz,
                runtime::json_escape(&o.outcome.kernel),
                p.k,
                p.m,
                p.sharing,
                p.decoupled,
                p.partition,
                o.outcome.feasible,
                o.outcome.luts,
                o.outcome.ffs,
                o.outcome.dsps,
                o.outcome.brams,
                o.outcome.plm_brams,
                o.outcome.latency_cycles,
                o.outcome.total_s,
                o.outcome.throughput_eps,
                o.outcome.service_rps,
                o.outcome.service_p99_s,
                o.utilization,
                o.pareto,
                o.service_pareto,
                if i + 1 == self.outcomes.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// A (platform index, clock) × grid cross product, flattened for the
/// worker pool. `backend` indexes the memoized (clock, backend-key)
/// compilation shared across platforms and `k`/`m`.
#[derive(Debug, Clone, Copy)]
struct ComboJob {
    platform: usize,
    clock_mhz: f64,
    point: usize,
    backend: usize,
}

/// Flatten platforms × clock ladders × grid points and assign each
/// combo its memoized backend slot. Returns the jobs plus the unique
/// (clock, key) list in first-seen order.
fn portfolio_jobs(
    platforms: &[Platform],
    points: &[DsePoint],
) -> (Vec<ComboJob>, Vec<(f64, BackendKey)>) {
    let mut keys: Vec<(u64, BackendKey)> = Vec::new();
    let mut jobs = Vec::new();
    for (pi, platform) in platforms.iter().enumerate() {
        for &clock in &platform.clock_ladder_mhz {
            for (qi, point) in points.iter().enumerate() {
                let key = (clock.to_bits(), point.backend_key());
                let bi = keys.iter().position(|&e| e == key).unwrap_or_else(|| {
                    keys.push(key);
                    keys.len() - 1
                });
                jobs.push(ComboJob {
                    platform: pi,
                    clock_mhz: clock,
                    point: qi,
                    backend: bi,
                });
            }
        }
    }
    let keys = keys
        .into_iter()
        .map(|(bits, k)| (f64::from_bits(bits), k))
        .collect();
    (jobs, keys)
}

fn resolve_jobs(jobs: usize, len: usize) -> usize {
    let jobs = if jobs == 0 {
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    } else {
        jobs
    };
    jobs.min(len.max(1))
}

impl DseEngine {
    /// Utilization of a feasible outcome against a platform's board.
    fn outcome_utilization(platform: &Platform, o: &DseOutcome) -> f64 {
        if !o.feasible {
            return 0.0;
        }
        let b = &platform.board;
        [
            o.luts as f64 / b.luts as f64,
            o.ffs as f64 / b.ffs as f64,
            o.dsps as f64 / b.dsps as f64,
            o.brams as f64 / b.brams as f64,
        ]
        .into_iter()
        .fold(0.0, f64::max)
    }

    /// Sweep the **platform × clock × (k, m, sharing, decoupling,
    /// partition)** cross product: the multi-board portfolio view.
    /// Frontend, middle end and scheduling stay compiled once (from
    /// [`DseEngine::prepare`]); backends are memoized per **(clock,
    /// backend key)** — a backend compiled at 200 MHz is reused across
    /// every platform whose ladder contains 200 MHz and every `k`/`m`.
    pub fn run_portfolio(
        &self,
        platforms: &[Platform],
        grid: &DseGrid,
        jobs: usize,
        elements: usize,
    ) -> PortfolioReport {
        let points = grid.points();
        let (combos, keys) = portfolio_jobs(platforms, &points);
        let jobs = resolve_jobs(jobs, combos.len());
        let oracle_base = polyhedra::OracleCounters::snapshot();
        let t = Instant::now();

        // Compile the unique (clock, backend-key) backends in parallel.
        let key_opts: Vec<FlowOptions> = keys
            .iter()
            .map(|&(clock, key)| {
                let rep = points
                    .iter()
                    .find(|p| p.backend_key() == key)
                    .expect("key from points");
                let mut opts = self.options_for(rep);
                opts.hls.clock_mhz = clock;
                opts
            })
            .collect();
        let backends: Vec<Backend> = {
            let workers = jobs.min(keys.len()).max(1);
            let mut indexed: Vec<(usize, Backend)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let key_opts = &key_opts;
                        scope.spawn(move || {
                            (w..key_opts.len())
                                .step_by(workers)
                                .map(|i| (i, self.pipeline.backend(&self.scheduled, &key_opts[i])))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("backend worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, be)| be).collect()
        };

        // Fan the per-combo system stage + simulation out.
        let next = AtomicUsize::new(0);
        let outcomes: Vec<PortfolioOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(jobs);
            for _ in 0..jobs {
                let next = &next;
                let combos = &combos;
                let points = &points;
                let key_opts = &key_opts;
                let backends = &backends;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<PortfolioOutcome> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= combos.len() {
                            break local;
                        }
                        let started = Instant::now();
                        let job = combos[i];
                        let platform = &platforms[job.platform];
                        let mut opts = key_opts[job.backend].clone();
                        opts.platform = platform.clone();
                        opts.system = Some(SystemConfig {
                            k: points[job.point].k,
                            m: points[job.point].m,
                        });
                        let outcome = self.evaluate_with_backend(
                            &points[job.point],
                            &opts,
                            &backends[job.backend],
                            elements,
                            started,
                        );
                        let utilization = DseEngine::outcome_utilization(platform, &outcome);
                        local.push(PortfolioOutcome {
                            platform: platform.id.clone(),
                            board: platform.board.name.clone(),
                            clock_mhz: job.clock_mhz,
                            outcome,
                            utilization,
                            pareto: false,
                            service_pareto: false,
                        });
                    }
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let uses = outcomes.len();
        PortfolioReport::assemble(
            platforms,
            outcomes,
            jobs,
            elements,
            t.elapsed().as_secs_f64(),
            keys.len(),
            uses,
            self.pipeline.cache_counters(),
            polyhedra::OracleCounters::snapshot().since(oracle_base),
        )
    }
}

impl ProgramDseEngine {
    /// The portfolio sweep for a multi-kernel program: platform × clock
    /// × joint grid points, with backends memoized per **(kernel,
    /// clock, backend key)**.
    pub fn run_portfolio(
        &self,
        platforms: &[Platform],
        grid: &DseGrid,
        jobs: usize,
        elements: usize,
    ) -> PortfolioReport {
        let points = grid.points();
        let nk = self.scheds.len();
        let (combos, keys) = portfolio_jobs(platforms, &points);
        let jobs = resolve_jobs(jobs, combos.len());
        let oracle_base = polyhedra::OracleCounters::snapshot();
        let t = Instant::now();

        // Compile (clock, key) × kernel backends on the worker pool.
        let reps: Vec<(f64, DsePoint)> = keys
            .iter()
            .map(|&(clock, key)| {
                (
                    clock,
                    *points
                        .iter()
                        .find(|p| p.backend_key() == key)
                        .expect("key from points"),
                )
            })
            .collect();
        let jobs_be = jobs.min(keys.len() * nk).max(1);
        let backends: Vec<Vec<Backend>> = {
            let mut indexed: Vec<(usize, Backend)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs_be)
                    .map(|w| {
                        let reps = &reps;
                        scope.spawn(move || {
                            (w..reps.len() * nk)
                                .step_by(jobs_be)
                                .map(|i| {
                                    let (key, kernel) = (i / nk, i % nk);
                                    let (clock, rep) = &reps[key];
                                    let mut opts = self.kernel_options_for(rep, kernel);
                                    opts.hls.clock_mhz = *clock;
                                    (i, self.pipeline.backend(&self.scheds[kernel], &opts))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("backend worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(i, _)| *i);
            let mut flat = indexed.into_iter().map(|(_, b)| b);
            (0..keys.len())
                .map(|_| (0..nk).map(|_| flat.next().expect("backend")).collect())
                .collect()
        };

        let next = AtomicUsize::new(0);
        let outcomes: Vec<PortfolioOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(jobs);
            for _ in 0..jobs {
                let next = &next;
                let combos = &combos;
                let points = &points;
                let backends = &backends;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<PortfolioOutcome> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= combos.len() {
                            break local;
                        }
                        let started = Instant::now();
                        let job = combos[i];
                        let platform = &platforms[job.platform];
                        let outcome = self.evaluate_with_backends(
                            platform,
                            &points[job.point],
                            &backends[job.backend],
                            elements,
                            started,
                        );
                        let utilization = DseEngine::outcome_utilization(platform, &outcome);
                        local.push(PortfolioOutcome {
                            platform: platform.id.clone(),
                            board: platform.board.name.clone(),
                            clock_mhz: job.clock_mhz,
                            outcome,
                            utilization,
                            pareto: false,
                            service_pareto: false,
                        });
                    }
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let uses = outcomes.len() * nk;
        PortfolioReport::assemble(
            platforms,
            outcomes,
            jobs,
            elements,
            t.elapsed().as_secs_f64(),
            keys.len() * nk,
            uses,
            self.pipeline.cache_counters(),
            polyhedra::OracleCounters::snapshot().since(oracle_base),
        )
    }
}
