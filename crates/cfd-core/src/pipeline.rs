//! Staged compilation pipeline.
//!
//! [`Flow::compile`](crate::Flow::compile) used to be one monolithic
//! function, so every design point in an exploration re-ran the whole
//! frontend and middle end from source. This module splits the flow into
//! individually runnable stages with typed outputs. A single-kernel
//! compile composes five of them; a multi-kernel program
//! ([`crate::program`]) runs the per-kernel stages once per kernel plus
//! the cross-kernel [`Pipeline::link`] stage:
//!
//! | stage | consumes | produces |
//! |-------|----------|----------|
//! | [`Pipeline::frontend`]   | CFDlang source | [`Frontend`]: type-checked AST |
//! | [`Pipeline::middle_end`] | [`Frontend`] + canonicalization options | [`MiddleEnd`]: tensor IR, layout, polyhedral model (dependences lazily) |
//! | [`Pipeline::schedule`]   | [`MiddleEnd`] + scheduler options | [`Scheduled`]: schedule, liveness, compatibility graph |
//! | [`Pipeline::link`]       | all kernels' [`Scheduled`] | [`LinkStage`]: inter-kernel handoffs + sequence liveness |
//! | [`Pipeline::backend`]    | [`Scheduled`] + decoupling/memory/HLS options | [`Backend`]: C kernel, HLS report, Mnemosyne config, memory subsystem |
//! | [`Pipeline::system`]     | [`Backend`] + board/replication options | [`SystemStage`]: replicated design + host program |
//!
//! (Programs replace the per-kernel system stage with one shared
//! program-memory + multi-system stage — see
//! [`ProgramFlow`](crate::program::ProgramFlow).)
//!
//! The immutable middle-end products are stored behind [`Arc`], so a
//! [`Scheduled`] stage can be cloned cheaply and shared across threads —
//! the property the [`dse`](crate::dse) engine exploits to fan backend
//! and system construction out over a configuration grid. Every stage
//! records its wall-clock cost ([`StageTimings`]) and bumps a per-
//! pipeline invocation counter ([`StageCounts`]), which lets tests assert
//! that an exploration compiled the frontend and middle end exactly once.
//!
//! ```
//! use cfd_core::pipeline::Pipeline;
//! use cfd_core::FlowOptions;
//!
//! let src = cfdlang::examples::inverse_helmholtz(4);
//! let opts = FlowOptions::default();
//! let p = Pipeline::new();
//! let fe = p.frontend(&src).unwrap();
//! let me = p.middle_end(&fe, &opts).unwrap();
//! let sc = p.schedule(&me, &opts);
//! let be = p.backend(&sc, &opts);
//! let sys = p.system(&be, &opts).unwrap();
//! assert!(sys.system.is_some());
//! assert_eq!(p.counters().frontend, 1);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use cfdlang::TypedProgram;
use cgen::{CKernel, CodegenOptions};
use hls::HlsReport;
use mnemosyne::{MemorySubsystem, MnemosyneConfig};
use pschedule::{CompatibilityGraph, Dependences, KernelModel, Liveness, Schedule};
use sysgen::{HostProgram, SystemDesign};
use teil::layout::LayoutPlan;
use teil::Module;

use crate::cache::{schedule_key, CacheCounters, CachedSchedule, CompileCache};
use crate::{Artifacts, FlowError, FlowOptions};

/// How many times each stage of a [`Pipeline`] ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageCounts {
    pub frontend: usize,
    pub middle_end: usize,
    pub schedule: usize,
    /// Cross-kernel link-stage invocations (multi-kernel programs).
    pub link: usize,
    pub backend: usize,
    pub system: usize,
}

#[derive(Debug, Default)]
struct StageCounters {
    frontend: AtomicUsize,
    middle_end: AtomicUsize,
    schedule: AtomicUsize,
    link: AtomicUsize,
    backend: AtomicUsize,
    system: AtomicUsize,
}

impl StageCounters {
    fn snapshot(&self) -> StageCounts {
        StageCounts {
            frontend: self.frontend.load(Ordering::Relaxed),
            middle_end: self.middle_end.load(Ordering::Relaxed),
            schedule: self.schedule.load(Ordering::Relaxed),
            link: self.link.load(Ordering::Relaxed),
            backend: self.backend.load(Ordering::Relaxed),
            system: self.system.load(Ordering::Relaxed),
        }
    }
}

/// Wall-clock seconds spent in each stage for one compilation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimings {
    pub frontend_s: f64,
    pub middle_end_s: f64,
    pub schedule_s: f64,
    /// Cross-kernel link stage (0 for single-kernel compiles).
    pub link_s: f64,
    pub backend_s: f64,
    pub system_s: f64,
    /// Compile-cache counters for this compilation (all zero when the
    /// pipeline ran uncached).
    pub cache: CacheCounters,
    /// Polyhedra-oracle counters for this compilation (delta of the
    /// process-wide totals across the run; see
    /// [`polyhedra::OracleCounters`]).
    pub oracle: polyhedra::OracleCounters,
}

impl StageTimings {
    pub fn total_s(&self) -> f64 {
        self.frontend_s
            + self.middle_end_s
            + self.schedule_s
            + self.link_s
            + self.backend_s
            + self.system_s
    }
}

/// Output of the frontend stage: the type-checked program.
#[derive(Debug, Clone)]
pub struct Frontend {
    pub typed: Arc<TypedProgram>,
    pub elapsed_s: f64,
}

/// Output of the middle end: canonicalized tensor IR plus the layout,
/// polyhedral model and dependence information derived from it. All
/// products are immutable and `Arc`-shared — cloning a `MiddleEnd` is a
/// handful of reference-count bumps.
#[derive(Debug, Clone)]
pub struct MiddleEnd {
    pub typed: Arc<TypedProgram>,
    pub module: Arc<Module>,
    pub layout: Arc<LayoutPlan>,
    pub model: Arc<KernelModel>,
    /// Dependence analysis, computed on first use (see
    /// [`MiddleEnd::dependences`]): a schedule-cache hit never asks for
    /// it, so the warm path skips the analysis entirely.
    dependences: Arc<OnceLock<Dependences>>,
    pub elapsed_s: f64,
}

impl MiddleEnd {
    /// The RAW/WAR/WAW dependence analysis over the polyhedral model,
    /// memoized on first use and shared across clones (and with the
    /// [`Artifacts`] assembled from this middle end).
    pub fn dependences(&self) -> &Dependences {
        self.dependences
            .get_or_init(|| Dependences::analyze(&self.model))
    }
}

/// Output of the scheduling stage: the rescheduled program plus the
/// liveness and compatibility analyses every backend variant shares.
#[derive(Debug, Clone)]
pub struct Scheduled {
    pub middle: MiddleEnd,
    pub schedule: Arc<Schedule>,
    pub liveness: Arc<Liveness>,
    pub compat: Arc<CompatibilityGraph>,
    pub elapsed_s: f64,
}

/// Output of the cross-kernel link stage of a multi-kernel program:
/// inter-kernel dependences (tensor handoffs) and kernel-sequence
/// liveness, the inputs to program-wide PLM sharing.
#[derive(Debug, Clone)]
pub struct LinkStage {
    pub cross: Arc<pschedule::CrossLiveness>,
    pub elapsed_s: f64,
}

/// Output of the backend stage: generated code, the HLS estimate and the
/// synthesized memory subsystem for one option combination.
#[derive(Debug, Clone)]
pub struct Backend {
    pub kernel: CKernel,
    pub c_source: String,
    pub hls_report: HlsReport,
    pub mnemosyne_config: MnemosyneConfig,
    pub memory: MemorySubsystem,
    pub elapsed_s: f64,
}

/// Output of the system stage: the replicated design (if it fits) and
/// the generated host program.
#[derive(Debug, Clone)]
pub struct SystemStage {
    pub system: Option<SystemDesign>,
    pub host_source: String,
    pub elapsed_s: f64,
}

/// A handle over the staged flow. Stage methods are `&self` and the
/// counter state is atomic, so one `Pipeline` can drive many threads.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    counters: Arc<StageCounters>,
    cache: Option<Arc<CompileCache>>,
}

impl Pipeline {
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// A pipeline whose scheduling stage is memoized through `cache`
    /// (see [`crate::cache`]). Cached and uncached compiles produce
    /// bit-identical artifacts; only the stage counters and wall clock
    /// differ.
    pub fn with_cache(cache: Arc<CompileCache>) -> Self {
        Pipeline {
            counters: Arc::default(),
            cache: Some(cache),
        }
    }

    /// The attached compile cache, if any.
    pub fn cache(&self) -> Option<&Arc<CompileCache>> {
        self.cache.as_ref()
    }

    /// Counters of the attached cache (all zero when uncached).
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache
            .as_ref()
            .map(|c| c.counters())
            .unwrap_or_default()
    }

    /// Snapshot of how many times each stage has run on this pipeline.
    pub fn counters(&self) -> StageCounts {
        self.counters.snapshot()
    }

    /// Count a frontend invocation performed outside [`Pipeline::frontend`]
    /// (the program frontend parses all kernels in one pass).
    pub(crate) fn count_frontend(&self) {
        self.counters.frontend.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a system-stage invocation performed outside
    /// [`Pipeline::system`] (the program system stage).
    pub(crate) fn count_system(&self) {
        self.counters.system.fetch_add(1, Ordering::Relaxed);
    }

    /// Parse and type-check single-kernel CFDlang source. A source
    /// written as one `kernel name { ... }` block is accepted as the
    /// degenerate one-kernel program; multi-kernel sources must go
    /// through the program flow ([`Pipeline::run_program`]).
    pub fn frontend(&self, source: &str) -> Result<Frontend, FlowError> {
        self.counters.frontend.fetch_add(1, Ordering::Relaxed);
        let t = Instant::now();
        let set = cfdlang::parse_set(source)?;
        if set.is_multi() {
            return Err(FlowError::Backend(
                "multi-kernel program source: use the program flow (run_program)".into(),
            ));
        }
        let ast = set
            .kernels
            .into_iter()
            .next()
            .map(|k| k.program)
            .unwrap_or(cfdlang::Program {
                decls: vec![],
                stmts: vec![],
            });
        let typed = cfdlang::check(&ast)?;
        Ok(Frontend {
            typed: Arc::new(typed),
            elapsed_s: t.elapsed().as_secs_f64(),
        })
    }

    /// Lower to tensor IR, canonicalize (factorization, CSE, DCE per
    /// `opts`), materialize the row-major layout and build the
    /// polyhedral model. Dependence analysis is deferred to first use —
    /// only a schedule-cache miss (or an explicit legality check) pays
    /// for it.
    pub fn middle_end(&self, fe: &Frontend, opts: &FlowOptions) -> Result<MiddleEnd, FlowError> {
        self.counters.middle_end.fetch_add(1, Ordering::Relaxed);
        let t = Instant::now();
        let mut module = teil::lower(&fe.typed)?;
        if opts.factorize {
            module = teil::transform::factorize(&module);
        }
        if opts.clean {
            module = teil::transform::cse(&module);
            module = teil::transform::dce(&module);
        }
        let layout = LayoutPlan::row_major(&module);
        let model = KernelModel::build(&module, &layout);
        Ok(MiddleEnd {
            typed: Arc::clone(&fe.typed),
            module: Arc::new(module),
            layout: Arc::new(layout),
            model: Arc::new(model),
            dependences: Arc::new(OnceLock::new()),
            elapsed_s: t.elapsed().as_secs_f64(),
        })
    }

    /// Reschedule and run the liveness / compatibility analyses. The
    /// per-array liveness expansions fan out over `opts.jobs` workers;
    /// the result is bit-identical for every worker count.
    ///
    /// On a pipeline built with [`Pipeline::with_cache`] the stage is
    /// memoized under the content hash of the canonicalized module and
    /// the reachable options ([`schedule_key`]): a hit returns the
    /// cached products without running — or counting — the stage.
    pub fn schedule(&self, me: &MiddleEnd, opts: &FlowOptions) -> Scheduled {
        let t = Instant::now();
        let key = self.cache.as_ref().map(|_| schedule_key(&me.module, opts));
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            if let Some(hit) = cache.lookup(key) {
                return Scheduled {
                    middle: me.clone(),
                    schedule: Arc::clone(&hit.schedule),
                    liveness: Arc::clone(&hit.liveness),
                    compat: Arc::clone(&hit.compat),
                    elapsed_s: t.elapsed().as_secs_f64(),
                };
            }
        }
        self.counters.schedule.fetch_add(1, Ordering::Relaxed);
        let schedule =
            pschedule::reschedule(&me.module, &me.model, me.dependences(), &opts.scheduler);
        let liveness = Liveness::analyze_jobs(&me.module, &me.model, &schedule, opts.jobs);
        let compat = CompatibilityGraph::build(&me.model, &liveness);
        let schedule = Arc::new(schedule);
        let liveness = Arc::new(liveness);
        let compat = Arc::new(compat);
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            cache.store(
                key,
                Arc::new(CachedSchedule {
                    schedule: Arc::clone(&schedule),
                    liveness: Arc::clone(&liveness),
                    compat: Arc::clone(&compat),
                }),
            );
        }
        Scheduled {
            middle: me.clone(),
            schedule,
            liveness,
            compat,
            elapsed_s: t.elapsed().as_secs_f64(),
        }
    }

    /// Cross-kernel link analysis over a program's scheduled kernels:
    /// resolve the tensor handoffs (inter-kernel dependences) and the
    /// kernel-sequence live intervals that program-wide PLM sharing
    /// feeds on. The degenerate single-kernel program links trivially
    /// (no handoffs).
    pub fn link(&self, names: &[String], kernels: &[Scheduled]) -> Result<LinkStage, FlowError> {
        self.counters.link.fetch_add(1, Ordering::Relaxed);
        let t = Instant::now();
        let modules: Vec<&Module> = kernels.iter().map(|sc| sc.middle.module.as_ref()).collect();
        let cross =
            pschedule::CrossLiveness::analyze(names, &modules).map_err(FlowError::Backend)?;
        Ok(LinkStage {
            cross: Arc::new(cross),
            elapsed_s: t.elapsed().as_secs_f64(),
        })
    }

    /// Generate the C kernel, estimate it with the HLS model and
    /// synthesize the Mnemosyne memory subsystem. Honors `opts.decoupled`,
    /// `opts.memory` and `opts.hls`.
    pub fn backend(&self, sc: &Scheduled, opts: &FlowOptions) -> Backend {
        self.counters.backend.fetch_add(1, Ordering::Relaxed);
        let t = Instant::now();
        // Liveness → compatibility graph → Mnemosyne configuration. In
        // non-decoupled mode the temporaries stay inside the accelerator,
        // so the external memory subsystem only holds interface arrays.
        let full_config = MnemosyneConfig::from_graph(&sc.compat);
        let mut mnemosyne_config = if opts.decoupled {
            full_config
        } else {
            full_config.retain_interface()
        };
        // Propagate the HLS port demands (array partitioning / unrolling)
        // into the memory metadata: Mnemosyne builds multi-bank PLMs for
        // them (Section V-A1/V-A2).
        for spec in mnemosyne_config.arrays.clone() {
            let (r, w) = opts.hls.ports_for(&spec.name);
            if (r, w) != (1, 1) {
                mnemosyne_config.set_ports(&spec.name, r, w);
            }
        }
        let cg_opts = CodegenOptions {
            decoupled: opts.decoupled,
            ..Default::default()
        };
        let kernel =
            cgen::build_kernel(&sc.middle.module, &sc.middle.model, &sc.schedule, &cg_opts);
        let c_source = cgen::emit_c99(&kernel);
        let hls_report = hls::synthesize(&kernel, &opts.hls);
        let memory = mnemosyne::synthesize(&mnemosyne_config, &opts.memory);
        Backend {
            kernel,
            c_source,
            hls_report,
            mnemosyne_config,
            memory,
            elapsed_s: t.elapsed().as_secs_f64(),
        }
    }

    /// Pick / validate the replication configuration and build the
    /// replicated system plus its host program on the target platform.
    /// Returns [`FlowError::DoesNotFit`] only when `opts.system`
    /// explicitly requests a configuration that exceeds the platform's
    /// board — the automatic choice degrades to the largest feasible
    /// replication (or no system at all) on small boards.
    pub fn system(&self, be: &Backend, opts: &FlowOptions) -> Result<SystemStage, FlowError> {
        self.counters.system.fetch_add(1, Ordering::Relaxed);
        let t = Instant::now();
        let platform = &opts.platform;
        if let Some(c) = opts.system {
            if !c.valid() {
                return Err(FlowError::Backend(format!(
                    "invalid replication (k, m) = ({}, {}): m must be a power-of-two multiple of k",
                    c.k, c.m
                )));
            }
        }
        let cfg = match opts.system {
            Some(c) => Some(c),
            None => sysgen::max_equal_config(platform, &be.hls_report, &be.memory),
        };
        let (system, host_source) = match cfg {
            Some(c) => {
                let host = HostProgram::from_kernel(&be.kernel, c);
                let host_src = host.to_c(opts.elements);
                let design = SystemDesign::build(platform, &be.hls_report, &be.memory, c, host);
                if design.is_none() && opts.system.is_some() {
                    return Err(FlowError::DoesNotFit {
                        k: c.k,
                        m: c.m,
                        board: platform.board.name.clone(),
                    });
                }
                (design, host_src)
            }
            None => (None, String::new()),
        };
        Ok(SystemStage {
            system,
            host_source,
            elapsed_s: t.elapsed().as_secs_f64(),
        })
    }

    /// The complete flow as a composition of the five stages —
    /// behaviorally identical to the old monolithic `Flow::compile`.
    pub fn run(&self, source: &str, opts: &FlowOptions) -> Result<Artifacts, FlowError> {
        let oracle_base = polyhedra::OracleCounters::snapshot();
        let fe = self.frontend(source)?;
        let me = self.middle_end(&fe, opts)?;
        let sc = self.schedule(&me, opts);
        let be = self.backend(&sc, opts);
        let sys = self.system(&be, opts)?;
        let mut art = Artifacts::assemble(&fe, &sc, be, sys, opts);
        art.timings.cache = self.cache_counters();
        art.timings.oracle = polyhedra::OracleCounters::snapshot().since(oracle_base);
        Ok(art)
    }
}

impl Artifacts {
    /// Assemble the flat [`Artifacts`] record the rest of the codebase
    /// consumes from staged outputs. The immutable analysis products
    /// (typed AST, module, model, schedule, liveness, compatibility
    /// graph) are `Arc`-shared with the pipeline stages rather than
    /// deep-cloned — assembly is a handful of reference-count bumps.
    pub fn assemble(
        fe: &Frontend,
        sc: &Scheduled,
        be: Backend,
        sys: SystemStage,
        opts: &FlowOptions,
    ) -> Artifacts {
        let me = &sc.middle;
        let timings = StageTimings {
            frontend_s: fe.elapsed_s,
            middle_end_s: me.elapsed_s,
            schedule_s: sc.elapsed_s,
            link_s: 0.0,
            backend_s: be.elapsed_s,
            system_s: sys.elapsed_s,
            cache: CacheCounters::default(),
            oracle: polyhedra::OracleCounters::default(),
        };
        Artifacts {
            typed: Arc::clone(&me.typed),
            module: Arc::clone(&me.module),
            model: Arc::clone(&me.model),
            dependences: Arc::clone(&me.dependences),
            schedule: Arc::clone(&sc.schedule),
            liveness: Arc::clone(&sc.liveness),
            compat: Arc::clone(&sc.compat),
            kernel: be.kernel,
            c_source: be.c_source,
            hls_report: be.hls_report,
            mnemosyne_config: be.mnemosyne_config,
            memory: be.memory,
            system: sys.system,
            host_source: sys.host_source,
            options: opts.clone(),
            timings,
        }
    }
}
