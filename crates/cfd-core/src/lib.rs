//! `cfd-core` — the end-to-end CFDlang-to-FPGA flow.
//!
//! The toolchain of Figure 3 is organized as a **staged pipeline**
//! ([`pipeline`]) with five typed stages:
//!
//! ```text
//! Frontend   CFDlang source ──parse/check──► typed AST
//! MiddleEnd  typed AST ──lower/factorize/cse/dce──► tensor IR
//!            + row-major layout + polyhedral model
//!            (+ dependences, computed lazily on first use)
//! Scheduled  middle end ──reschedule──► schedule + liveness
//!            + memory-compatibility graph
//! Backend    scheduled ──codegen──► C99 kernel + HLS report
//!            + Mnemosyne config + memory subsystem
//! System     backend ──Eq.(3)──► replicated design + host program
//! ```
//!
//! Each stage is individually runnable, its products are immutable and
//! `Arc`-shared, and per-stage wall-clock timings and invocation counts
//! are recorded. [`Flow::compile`] is a thin composition of the five
//! stages; the [`dse`] engine reuses the first three across a whole
//! configuration grid and fans the rest out over worker threads.
//!
//! # Quick start
//!
//! ```
//! use cfd_core::{Flow, FlowOptions};
//!
//! let src = cfdlang::examples::inverse_helmholtz(5);
//! let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
//! assert_eq!(art.hls_report.dsps, 15);
//! assert!(art.system.is_some());
//! assert!(art.timings.total_s() > 0.0);
//!
//! // Functional check of the generated accelerator against the
//! // reference interpreter:
//! let v = art.verify(2, 42).unwrap();
//! assert!(v.bitexact);
//! ```
//!
//! # Exploring a design space
//!
//! ```
//! use cfd_core::dse::{DseEngine, DseGrid};
//! use cfd_core::FlowOptions;
//!
//! let src = cfdlang::examples::inverse_helmholtz(4);
//! // Frontend, middle end and scheduling run once here ...
//! let engine = DseEngine::prepare(&src, &FlowOptions::default()).unwrap();
//! // ... and every grid point reuses them, in parallel.
//! let report = engine.run(&DseGrid::default(), 4, 1_000);
//! assert!(report.evaluated >= 16);
//! let best = report.best().unwrap();
//! assert!(best.feasible && best.throughput_eps > 0.0);
//! ```

pub mod cache;
pub mod dse;
pub mod pipeline;
pub mod program;

use cfdlang::{Diagnostic, TypedProgram};
use cgen::CKernel;
use hls::{HlsOptions, HlsReport};
use mnemosyne::{MemoryOptions, MemorySubsystem, MnemosyneConfig};
use pschedule::{
    CompatibilityGraph, Dependences, KernelModel, Liveness, Schedule, SchedulerOptions,
};
use sysgen::{Platform, SystemConfig, SystemDesign};
use teil::Module;
use zynq::{ArmCostModel, SimConfig};

pub use cache::{CacheCounters, CompileCache};
pub use pipeline::{Pipeline, StageCounts, StageTimings};
pub use program::{ProgramArtifacts, ProgramFlow, ProgramOptions};
// The serving layer: request-level batching runtime over a compiled
// system ([`ProgramArtifacts::serve`] is the artifact-level entry).
pub use runtime::{
    json_escape, Arrival, BatchPolicy, OnlinePolicy, RecoveryPolicy, RequestOutcome, RuntimeError,
    RuntimeOptions, ServeOutcome, ServiceReport,
};
// The fleet layer: one request stream sharded across N boards
// ([`ProgramArtifacts::serve_fleet`] is the artifact-level entry).
pub use runtime::{
    serve_fleet, BoardReport, FleetBoard, FleetOptions, FleetOutcome, FleetReport, RoutePolicy,
};
pub use zynq::FaultPlan;

/// Errors from the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Frontend (parse / type-check) failure.
    Frontend(Diagnostic),
    /// Middle-end or backend failure.
    Backend(String),
    /// The requested system configuration does not fit the selected
    /// platform's board — the structured small-board error (callers
    /// can retry with a smaller replication or another platform).
    DoesNotFit { k: usize, m: usize, board: String },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Frontend(d) => write!(f, "{d}"),
            FlowError::Backend(m) => write!(f, "{m}"),
            FlowError::DoesNotFit { k, m, board } => {
                write!(
                    f,
                    "configuration k={k}, m={m} exceeds the resources of {board}"
                )
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<Diagnostic> for FlowError {
    fn from(d: Diagnostic) -> Self {
        FlowError::Frontend(d)
    }
}

impl From<String> for FlowError {
    fn from(s: String) -> Self {
        FlowError::Backend(s)
    }
}

/// Options for the complete flow.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Exploit contraction associativity (Section IV-A). On by default.
    pub factorize: bool,
    /// Run duplicate-statement CSE and dead-code elimination.
    pub clean: bool,
    /// Rescheduling options (step ⓘⓘⓘ).
    pub scheduler: SchedulerOptions,
    /// Export temporaries to PLM units (the paper's decoupled design).
    pub decoupled: bool,
    /// Memory synthesis options (sharing on by default).
    pub memory: MemoryOptions,
    /// HLS options (clock from the platform ladder, pipelining).
    pub hls: HlsOptions,
    /// Target platform: board budget, host CPU, DMA fabric and clock
    /// ladder. Defaults to the paper's ZCU106.
    pub platform: Platform,
    /// Requested replication; `None` picks the largest feasible `k = m`.
    pub system: Option<SystemConfig>,
    /// CFD problem size for host-program generation.
    pub elements: usize,
    /// Compilation worker threads for the parallelizable passes
    /// (per-kernel program stages, per-array liveness): `0` = one per
    /// available core, `1` = fully serial. Artifacts are bit-identical
    /// for every value — the knob trades wall clock only.
    pub jobs: usize,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            factorize: true,
            clean: true,
            scheduler: SchedulerOptions::default(),
            decoupled: true,
            memory: MemoryOptions::default(),
            hls: HlsOptions::default(),
            platform: Platform::zcu106(),
            system: None,
            elements: 50_000,
            jobs: 0,
        }
    }
}

impl FlowOptions {
    /// Options targeting `platform`, synthesizing at its default fabric
    /// clock. (`FlowOptions::default()` is `for_platform(zcu106)`.)
    pub fn for_platform(platform: Platform) -> FlowOptions {
        let mut opts = FlowOptions::default();
        opts.hls.clock_mhz = platform.default_clock_mhz;
        opts.platform = platform;
        opts
    }

    /// Resolve the `jobs` knob to a concrete worker count: `0` asks the
    /// OS for the available parallelism, anything else is taken as-is.
    pub fn resolved_jobs(&self) -> usize {
        resolve_jobs(self.jobs)
    }
}

/// `0` → available parallelism, otherwise the value itself (min 1).
pub(crate) fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

/// Everything the flow produces.
#[derive(Debug, Clone)]
pub struct Artifacts {
    pub typed: std::sync::Arc<TypedProgram>,
    pub module: std::sync::Arc<Module>,
    pub model: std::sync::Arc<KernelModel>,
    /// Lazy dependence analysis — see [`Artifacts::dependences`].
    dependences: std::sync::Arc<std::sync::OnceLock<Dependences>>,
    pub schedule: std::sync::Arc<Schedule>,
    pub liveness: std::sync::Arc<Liveness>,
    pub compat: std::sync::Arc<CompatibilityGraph>,
    pub kernel: CKernel,
    /// The generated C99 source (input to HLS).
    pub c_source: String,
    pub hls_report: HlsReport,
    pub mnemosyne_config: MnemosyneConfig,
    pub memory: MemorySubsystem,
    /// `None` only if the requested configuration does not fit.
    pub system: Option<SystemDesign>,
    /// Generated host-code skeleton.
    pub host_source: String,
    pub options: FlowOptions,
    /// Wall-clock cost of each pipeline stage for this compilation.
    pub timings: StageTimings,
}

/// The flow entry point.
pub struct Flow;

impl Flow {
    /// Compile a CFDlang program through the complete flow — a thin
    /// composition of the five [`pipeline`] stages on a fresh
    /// [`Pipeline`].
    pub fn compile(source: &str, opts: &FlowOptions) -> Result<Artifacts, FlowError> {
        Pipeline::new().run(source, opts)
    }

    /// Compile against a shared [`CompileCache`]: the scheduling stage
    /// is served from the cache on a content-hash hit and stored on a
    /// miss. Artifacts are bit-identical to an uncached compile; the
    /// resulting [`Artifacts::timings`] carry the cache counters.
    pub fn compile_cached(
        source: &str,
        opts: &FlowOptions,
        cache: std::sync::Arc<CompileCache>,
    ) -> Result<Artifacts, FlowError> {
        Pipeline::with_cache(cache).run(source, opts)
    }
}

impl Artifacts {
    /// The RAW/WAR/WAW dependence analysis over the polyhedral model.
    ///
    /// Computed on first use and memoized (shared with the pipeline's
    /// [`MiddleEnd`](pipeline::MiddleEnd), so a schedule-cache miss —
    /// which needs dependences to reschedule — fills it for free). A
    /// cache-hit compile that never asks for dependences never runs the
    /// analysis.
    pub fn dependences(&self) -> &Dependences {
        self.dependences
            .get_or_init(|| Dependences::analyze(&self.model))
    }

    /// Run the full-system simulation (requires a fitting system).
    pub fn simulate(&self, sim: &SimConfig) -> Result<zynq::HwResult, FlowError> {
        let system = self
            .system
            .as_ref()
            .ok_or_else(|| FlowError::Backend("no feasible system configuration".into()))?;
        Ok(zynq::simulate_hw(system, sim))
    }

    /// Verify `n` random elements of the accelerator against the
    /// reference interpreter.
    pub fn verify(&self, n: usize, seed: u64) -> Result<zynq::VerifyResult, FlowError> {
        zynq::verify_elements(&self.module, &self.kernel, n, seed).map_err(FlowError::Backend)
    }

    /// Host software timings for the Figure-10 comparison, on the
    /// compilation's target platform CPU.
    pub fn sw_times(
        &self,
        elements: usize,
    ) -> Result<(zynq::sim::SwResult, zynq::sim::SwResult), FlowError> {
        let model = ArmCostModel::from_platform(&self.options.platform);
        let reference =
            zynq::sim::sw_reference(&self.module, &model, elements).map_err(FlowError::Backend)?;
        let hls_code =
            zynq::sim::sw_hls_code(&self.kernel, &model, elements).map_err(FlowError::Backend)?;
        Ok((reference, hls_code))
    }

    /// Per-kernel BRAM count of the memory subsystem.
    pub fn plm_brams(&self) -> usize {
        self.memory.brams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_helmholtz_end_to_end() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
        assert_eq!(art.module.stmts.len(), 7);
        assert!(art.c_source.contains("kernel_body"));
        assert!(art.system.is_some());
        let v = art.verify(2, 1).unwrap();
        assert!(v.bitexact);
    }

    #[test]
    fn frontend_errors_propagate() {
        let err = Flow::compile("var x : [", &FlowOptions::default()).unwrap_err();
        assert!(matches!(err, FlowError::Frontend(_)));
    }

    #[test]
    fn requested_oversized_system_errors() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let opts = FlowOptions {
            system: Some(SystemConfig { k: 64, m: 64 }),
            ..Default::default()
        };
        let err = Flow::compile(&src, &opts).unwrap_err();
        assert!(matches!(err, FlowError::DoesNotFit { .. }));
    }

    #[test]
    fn no_factorization_option() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let opts = FlowOptions {
            factorize: false,
            ..Default::default()
        };
        let art = Flow::compile(&src, &opts).unwrap();
        assert_eq!(art.module.stmts.len(), 3);
        assert!(art.verify(1, 5).unwrap().bitexact);
    }

    #[test]
    fn simulation_runs_from_artifacts() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
        let r = art
            .simulate(&SimConfig {
                elements: 64,
                ..Default::default()
            })
            .unwrap();
        assert!(r.total_s > 0.0);
        assert!(r.exec_s > 0.0);
    }

    #[test]
    fn array_partitioning_flows_into_memory_subsystem() {
        // Partitioning u demands a multi-bank PLM: Mnemosyne replicates
        // the banks (Section V-A1/V-A2).
        let src = cfdlang::examples::inverse_helmholtz(11);
        let base = Flow::compile(&src, &FlowOptions::default()).unwrap();
        let opts = FlowOptions {
            hls: hls::HlsOptions {
                partition: vec![("u".into(), 3)],
                ..Default::default()
            },
            ..Default::default()
        };
        let part = Flow::compile(&src, &opts).unwrap();
        let iu = part.mnemosyne_config.index_of("u").unwrap();
        assert_eq!(part.mnemosyne_config.arrays[iu].read_ports, 3);
        assert!(
            part.memory.brams > base.memory.brams,
            "multi-port PLM must cost extra banks: {} vs {}",
            part.memory.brams,
            base.memory.brams
        );
    }

    #[test]
    fn sw_times_produce_sane_ratio() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
        let (reference, hls_code) = art.sw_times(10).unwrap();
        // Flat-index code is somewhat slower on the CPU.
        assert!(hls_code.per_element_s > reference.per_element_s);
        assert!(hls_code.per_element_s < 2.0 * reference.per_element_s);
    }
}
