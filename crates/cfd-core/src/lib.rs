//! `cfd-core` — the end-to-end CFDlang-to-FPGA flow.
//!
//! This crate wires the whole toolchain of Figure 3 into one call:
//!
//! ```text
//! CFDlang ──parse/check──► AST ──lower──► tensor IR ──canonicalize──►
//! polyhedral model ──reschedule──► schedule ──codegen──► C99 kernel
//!      ├──► HLS model        → resource/latency report
//!      ├──► liveness         → Mnemosyne config → memory subsystem
//!      └──► system generator → replicated design + host program
//!                            → full-system simulation & verification
//! ```
//!
//! # Quick start
//!
//! ```
//! use cfd_core::{Flow, FlowOptions};
//!
//! let src = cfdlang::examples::inverse_helmholtz(5);
//! let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
//! assert_eq!(art.hls_report.dsps, 15);
//! assert!(art.system.is_some());
//!
//! // Functional check of the generated accelerator against the
//! // reference interpreter:
//! let v = art.verify(2, 42).unwrap();
//! assert!(v.bitexact);
//! ```

use cfdlang::{Diagnostic, TypedProgram};
use cgen::{CKernel, CodegenOptions};
use hls::{HlsOptions, HlsReport};
use mnemosyne::{MemoryOptions, MemorySubsystem, MnemosyneConfig};
use pschedule::{
    CompatibilityGraph, Dependences, KernelModel, Liveness, Schedule, SchedulerOptions,
};
use sysgen::{BoardSpec, HostProgram, SystemConfig, SystemDesign};
use teil::layout::LayoutPlan;
use teil::Module;
use zynq::{ArmCostModel, SimConfig};

/// Errors from the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Frontend (parse / type-check) failure.
    Frontend(Diagnostic),
    /// Middle-end or backend failure.
    Backend(String),
    /// The requested system configuration does not fit the board.
    DoesNotFit { k: usize, m: usize },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Frontend(d) => write!(f, "{d}"),
            FlowError::Backend(m) => write!(f, "{m}"),
            FlowError::DoesNotFit { k, m } => {
                write!(f, "configuration k={k}, m={m} exceeds the board resources")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<Diagnostic> for FlowError {
    fn from(d: Diagnostic) -> Self {
        FlowError::Frontend(d)
    }
}

impl From<String> for FlowError {
    fn from(s: String) -> Self {
        FlowError::Backend(s)
    }
}

/// Options for the complete flow.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Exploit contraction associativity (Section IV-A). On by default.
    pub factorize: bool,
    /// Run duplicate-statement CSE and dead-code elimination.
    pub clean: bool,
    /// Rescheduling options (step ⓘⓘⓘ).
    pub scheduler: SchedulerOptions,
    /// Export temporaries to PLM units (the paper's decoupled design).
    pub decoupled: bool,
    /// Memory synthesis options (sharing on by default).
    pub memory: MemoryOptions,
    /// HLS options (200 MHz, pipelining).
    pub hls: HlsOptions,
    /// Target board.
    pub board: BoardSpec,
    /// Requested replication; `None` picks the largest feasible `k = m`.
    pub system: Option<SystemConfig>,
    /// CFD problem size for host-program generation.
    pub elements: usize,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            factorize: true,
            clean: true,
            scheduler: SchedulerOptions::default(),
            decoupled: true,
            memory: MemoryOptions::default(),
            hls: HlsOptions::default(),
            board: BoardSpec::zcu106(),
            system: None,
            elements: 50_000,
        }
    }
}

/// Everything the flow produces.
#[derive(Debug, Clone)]
pub struct Artifacts {
    pub typed: TypedProgram,
    pub module: Module,
    pub model: KernelModel,
    pub dependences: Dependences,
    pub schedule: Schedule,
    pub liveness: Liveness,
    pub compat: CompatibilityGraph,
    pub kernel: CKernel,
    /// The generated C99 source (input to HLS).
    pub c_source: String,
    pub hls_report: HlsReport,
    pub mnemosyne_config: MnemosyneConfig,
    pub memory: MemorySubsystem,
    /// `None` only if the requested configuration does not fit.
    pub system: Option<SystemDesign>,
    /// Generated host-code skeleton.
    pub host_source: String,
    pub options: FlowOptions,
}

/// The flow entry point.
pub struct Flow;

impl Flow {
    /// Compile a CFDlang program through the complete flow.
    pub fn compile(source: &str, opts: &FlowOptions) -> Result<Artifacts, FlowError> {
        // Frontend.
        let ast = cfdlang::parse(source)?;
        let typed = cfdlang::check(&ast)?;

        // Middle end: lower and canonicalize.
        let mut module = teil::lower(&typed)?;
        if opts.factorize {
            module = teil::transform::factorize(&module);
        }
        if opts.clean {
            module = teil::transform::cse(&module);
            module = teil::transform::dce(&module);
        }

        // Layout materialization and the polyhedral model.
        let layout = LayoutPlan::row_major(&module);
        let model = KernelModel::build(&module, &layout);

        // Dependence analysis and rescheduling.
        let dependences = Dependences::analyze(&model);
        let schedule = pschedule::reschedule(&module, &model, &dependences, &opts.scheduler);

        // Liveness → compatibility graph → Mnemosyne configuration. In
        // non-decoupled mode the temporaries stay inside the accelerator,
        // so the external memory subsystem only holds interface arrays.
        let liveness = Liveness::analyze(&module, &model, &schedule);
        let compat = CompatibilityGraph::build(&model, &liveness);
        let full_config = MnemosyneConfig::from_graph(&compat);
        let mut mnemosyne_config = if opts.decoupled {
            full_config
        } else {
            full_config.retain_interface()
        };
        // Propagate the HLS port demands (array partitioning / unrolling)
        // into the memory metadata: Mnemosyne builds multi-bank PLMs for
        // them (Section V-A1/V-A2).
        for spec in mnemosyne_config.arrays.clone() {
            let (r, w) = opts.hls.ports_for(&spec.name);
            if (r, w) != (1, 1) {
                mnemosyne_config.set_ports(&spec.name, r, w);
            }
        }

        // Code generation and HLS.
        let cg_opts = CodegenOptions {
            decoupled: opts.decoupled,
            ..Default::default()
        };
        let kernel = cgen::build_kernel(&module, &model, &schedule, &cg_opts);
        let c_source = cgen::emit_c99(&kernel);
        let hls_report = hls::synthesize(&kernel, &opts.hls);

        // Memory subsystem.
        let memory = mnemosyne::synthesize(&mnemosyne_config, &opts.memory);

        // System generation.
        let cfg = match opts.system {
            Some(c) => Some(c),
            None => sysgen::max_equal_config(&opts.board, &hls_report, &memory),
        };
        let (system, host_source) = match cfg {
            Some(c) => {
                let host = HostProgram::from_kernel(&kernel, c);
                let host_src = host.to_c(opts.elements);
                let design =
                    SystemDesign::build(&opts.board, &hls_report, &memory, c, host);
                if design.is_none() && opts.system.is_some() {
                    return Err(FlowError::DoesNotFit { k: c.k, m: c.m });
                }
                (design, host_src)
            }
            None => (None, String::new()),
        };

        Ok(Artifacts {
            typed,
            module,
            model,
            dependences,
            schedule,
            liveness,
            compat,
            kernel,
            c_source,
            hls_report,
            mnemosyne_config,
            memory,
            system,
            host_source,
            options: opts.clone(),
        })
    }
}

impl Artifacts {
    /// Run the full-system simulation (requires a fitting system).
    pub fn simulate(&self, sim: &SimConfig) -> Result<zynq::HwResult, FlowError> {
        let system = self
            .system
            .as_ref()
            .ok_or_else(|| FlowError::Backend("no feasible system configuration".into()))?;
        Ok(zynq::simulate_hw(system, sim))
    }

    /// Verify `n` random elements of the accelerator against the
    /// reference interpreter.
    pub fn verify(&self, n: usize, seed: u64) -> Result<zynq::VerifyResult, FlowError> {
        zynq::verify_elements(&self.module, &self.kernel, n, seed).map_err(FlowError::Backend)
    }

    /// ARM software timings for the Figure-10 comparison.
    pub fn sw_times(
        &self,
        elements: usize,
    ) -> Result<(zynq::sim::SwResult, zynq::sim::SwResult), FlowError> {
        let model = ArmCostModel::a53_1200mhz();
        let reference =
            zynq::sim::sw_reference(&self.module, &model, elements).map_err(FlowError::Backend)?;
        let hls_code =
            zynq::sim::sw_hls_code(&self.kernel, &model, elements).map_err(FlowError::Backend)?;
        Ok((reference, hls_code))
    }

    /// Per-kernel BRAM count of the memory subsystem.
    pub fn plm_brams(&self) -> usize {
        self.memory.brams
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_helmholtz_end_to_end() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
        assert_eq!(art.module.stmts.len(), 7);
        assert!(art.c_source.contains("kernel_body"));
        assert!(art.system.is_some());
        let v = art.verify(2, 1).unwrap();
        assert!(v.bitexact);
    }

    #[test]
    fn frontend_errors_propagate() {
        let err = Flow::compile("var x : [", &FlowOptions::default()).unwrap_err();
        assert!(matches!(err, FlowError::Frontend(_)));
    }

    #[test]
    fn requested_oversized_system_errors() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let opts = FlowOptions {
            system: Some(SystemConfig { k: 64, m: 64 }),
            ..Default::default()
        };
        let err = Flow::compile(&src, &opts).unwrap_err();
        assert!(matches!(err, FlowError::DoesNotFit { .. }));
    }

    #[test]
    fn no_factorization_option() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let opts = FlowOptions {
            factorize: false,
            ..Default::default()
        };
        let art = Flow::compile(&src, &opts).unwrap();
        assert_eq!(art.module.stmts.len(), 3);
        assert!(art.verify(1, 5).unwrap().bitexact);
    }

    #[test]
    fn simulation_runs_from_artifacts() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
        let r = art
            .simulate(&SimConfig {
                elements: 64,
                ..Default::default()
            })
            .unwrap();
        assert!(r.total_s > 0.0);
        assert!(r.exec_s > 0.0);
    }

    #[test]
    fn array_partitioning_flows_into_memory_subsystem() {
        // Partitioning u demands a multi-bank PLM: Mnemosyne replicates
        // the banks (Section V-A1/V-A2).
        let src = cfdlang::examples::inverse_helmholtz(11);
        let base = Flow::compile(&src, &FlowOptions::default()).unwrap();
        let opts = FlowOptions {
            hls: hls::HlsOptions {
                partition: vec![("u".into(), 3)],
                ..Default::default()
            },
            ..Default::default()
        };
        let part = Flow::compile(&src, &opts).unwrap();
        let iu = part.mnemosyne_config.index_of("u").unwrap();
        assert_eq!(part.mnemosyne_config.arrays[iu].read_ports, 3);
        assert!(
            part.memory.brams > base.memory.brams,
            "multi-port PLM must cost extra banks: {} vs {}",
            part.memory.brams,
            base.memory.brams
        );
    }

    #[test]
    fn sw_times_produce_sane_ratio() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
        let (reference, hls_code) = art.sw_times(10).unwrap();
        // Flat-index code is somewhat slower on the CPU.
        assert!(hls_code.per_element_s > reference.per_element_s);
        assert!(hls_code.per_element_s < 2.0 * reference.per_element_s);
    }
}
