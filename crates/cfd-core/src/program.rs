//! Multi-kernel program compilation: a whole CFD solver into **one**
//! shared-memory accelerator system.
//!
//! A real CFD time-step is a pipeline of kernels (interpolation,
//! inverse Helmholtz solve, projection, ...) that should share one
//! accelerator system, its PLM budget and its DMA fabric. This module
//! threads the multi-kernel [`cfdlang::ProgramSet`] abstraction through
//! every pipeline layer:
//!
//! 1. **frontend** — [`Pipeline::program_frontend`] parses and checks
//!    the kernel blocks (a plain source is the degenerate one-kernel
//!    program),
//! 2. **per-kernel middle end / schedule / backend** — the existing
//!    single-kernel stages run once per kernel, so every per-kernel
//!    artifact is *bit-identical* to compiling that kernel alone,
//! 3. **link** — [`Pipeline::link`] resolves the inter-kernel tensor
//!    handoffs and kernel-sequence liveness,
//! 4. **program memory** — `mnemosyne::merge_configs` co-locates PLM
//!    groups *across* kernels under one BRAM budget (handoff buffers
//!    alias, dead-between-kernels buffers overlay),
//! 5. **program system** — `sysgen::MultiSystemDesign` replicates each
//!    kernel (`ks[i]` accelerators) against `m` shared PLM sets and
//!    checks the generalized Eq. (3) over the union,
//! 6. **simulation / verification** — `zynq::simulate_program` executes
//!    the chained host schedule; `zynq::verify_program` checks the
//!    chain bit-exactly against the chained reference interpreter.
//!
//! ```
//! use cfd_core::program::{ProgramFlow, ProgramOptions};
//!
//! let src = cfdlang::examples::axpy_chain(4);
//! let art = ProgramFlow::compile(&src, &ProgramOptions::default()).unwrap();
//! assert_eq!(art.names, vec!["axpy_scale", "axpy_update"]);
//! assert!(art.system.is_some());
//! assert!(art.verify(1, 7).unwrap().bitexact);
//! ```

use std::sync::Arc;
use std::time::Instant;

use cgen::ParamRole;
use mnemosyne::{MemorySubsystem, ProgramMemoryPlan};
use pschedule::CrossLiveness;
use sysgen::{MultiSystemDesign, ProgramHostProgram, ProgramSystemConfig};
use teil::Module;
use zynq::{ProgramHwResult, SimConfig, VerifyResult};

use crate::pipeline::{Backend, Frontend, LinkStage, Pipeline, Scheduled, StageTimings};
use crate::{Artifacts, FlowError, FlowOptions};

/// Options for compiling a multi-kernel program. The per-kernel axes
/// come from the embedded [`FlowOptions`] (applied uniformly to every
/// kernel); the program level adds cross-kernel sharing and the joint
/// replication choice.
#[derive(Debug, Clone)]
pub struct ProgramOptions {
    /// Per-kernel flow options. `flow.system` is ignored — the program
    /// system is chosen by `system` below.
    pub flow: FlowOptions,
    /// Co-locate PLM groups across kernels (handoff aliasing + overlay
    /// of buffers dead between kernels). With this off the program
    /// memory is the plain concatenation of the per-kernel subsystems.
    pub cross_sharing: bool,
    /// Requested program replication; `None` picks the largest feasible
    /// uniform `k = m`.
    pub system: Option<ProgramSystemConfig>,
}

impl Default for ProgramOptions {
    fn default() -> Self {
        ProgramOptions {
            flow: FlowOptions::default(),
            cross_sharing: true,
            system: None,
        }
    }
}

/// Everything a program compilation produces.
#[derive(Debug, Clone)]
pub struct ProgramArtifacts {
    /// Kernel names in execution order.
    pub names: Vec<String>,
    /// Per-kernel artifacts, exactly as the single-kernel flow would
    /// produce them (`system` is `None` — the program owns the system).
    pub kernels: Vec<Artifacts>,
    /// Cross-kernel dependences and sequence liveness.
    pub cross: Arc<CrossLiveness>,
    /// The merged program memory configuration (namespaced arrays,
    /// cross-kernel compatibility edges).
    pub memory_plan: ProgramMemoryPlan,
    /// The shared PLM subsystem of one PLM set.
    pub memory: MemorySubsystem,
    /// `None` only if the requested configuration does not fit.
    pub system: Option<MultiSystemDesign>,
    /// Generated chained host-code skeleton.
    pub host_source: String,
    pub options: ProgramOptions,
    /// Aggregated wall-clock stage costs (per-kernel stages summed).
    pub timings: StageTimings,
}

impl ProgramArtifacts {
    /// Number of kernels in the program.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Per-kernel artifacts by name.
    pub fn kernel(&self, name: &str) -> Option<&Artifacts> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.kernels[i])
    }

    /// Sum of the stand-alone per-kernel PLM BRAM counts — what the
    /// program would cost without cross-kernel co-location.
    pub fn per_kernel_plm_brams(&self) -> usize {
        self.kernels.iter().map(|a| a.memory.brams).sum()
    }

    /// Stage `i`'s C source under a program-unique symbol
    /// (`<stage>_body`) — every kernel compiles to `kernel_body` on its
    /// own, but one system links all stages together.
    pub fn stage_c_source(&self, i: usize) -> String {
        cgen::emit_c99_as(&self.kernels[i].kernel, &format!("{}_body", self.names[i]))
    }

    /// Run the chained full-system simulation (requires a fitting
    /// system).
    pub fn simulate(&self, sim: &SimConfig) -> Result<ProgramHwResult, FlowError> {
        let system = self
            .system
            .as_ref()
            .ok_or_else(|| FlowError::Backend("no feasible program configuration".into()))?;
        Ok(zynq::simulate_program(system, sim))
    }

    /// Verify `n` chained elements against the chained reference
    /// interpreter.
    pub fn verify(&self, n: usize, seed: u64) -> Result<VerifyResult, FlowError> {
        let modules: Vec<&Module> = self.kernels.iter().map(|a| &*a.module).collect();
        let kernels: Vec<&cgen::CKernel> = self.kernels.iter().map(|a| &a.kernel).collect();
        zynq::verify_program(&self.names, &modules, &kernels, n, seed).map_err(FlowError::Backend)
    }

    /// Serve a stream of `opts.requests` independent requests on the
    /// compiled system: generate per-request inputs and arrivals,
    /// schedule the batched stream (`runtime::serve`) and return the
    /// [`runtime::ServiceReport`] plus, when `opts.execute` is set,
    /// every request's output tensors.
    pub fn serve(
        &self,
        opts: &runtime::RuntimeOptions,
    ) -> Result<runtime::ServeOutcome, FlowError> {
        let system = self
            .system
            .as_ref()
            .ok_or_else(|| FlowError::Backend("no feasible program configuration".into()))?;
        let modules: Vec<&Module> = self.kernels.iter().map(|a| &*a.module).collect();
        let kernels: Vec<&cgen::CKernel> = self.kernels.iter().map(|a| &a.kernel).collect();
        // Timing-only runs skip the input tensors entirely (same
        // arrival stream either way, per seed).
        let mut requests = if opts.execute {
            runtime::generate_requests(&modules, opts.requests, &opts.arrival, opts.seed)
        } else {
            runtime::generate_timing_requests(opts.requests, &opts.arrival, opts.seed)
        }
        .map_err(|e| FlowError::Backend(e.to_string()))?;
        // Priority serving: requests cycle through the configured tier
        // count in id order (tier 0 is the most urgent), the same
        // deterministic assignment the differential tests replay.
        if opts.online.priority_tiers > 1 {
            for r in &mut requests {
                r.tier = (r.id % opts.online.priority_tiers as usize) as u8;
            }
        }
        runtime::serve(system, &self.names, &modules, &kernels, &requests, opts)
            .map_err(|e| FlowError::Backend(e.to_string()))
    }

    /// Serve one request stream across a fleet of boards
    /// (`runtime::serve_fleet`): generate per-request inputs and
    /// arrivals exactly as [`ProgramArtifacts::serve`] would, then let
    /// the dispatcher shard them over `boards`. The functional stages
    /// come from *this* artifact — the kernel chain is
    /// platform-independent, so heterogeneous boards share one set of
    /// modules and kernels while each board keeps its own compiled
    /// system and cost model.
    pub fn serve_fleet(
        &self,
        boards: &[runtime::FleetBoard],
        fopts: &runtime::FleetOptions,
    ) -> Result<runtime::FleetOutcome, FlowError> {
        let modules: Vec<&Module> = self.kernels.iter().map(|a| &*a.module).collect();
        let kernels: Vec<&cgen::CKernel> = self.kernels.iter().map(|a| &a.kernel).collect();
        let opts = &fopts.base;
        let requests = if opts.execute {
            runtime::generate_requests(&modules, opts.requests, &opts.arrival, opts.seed)
        } else {
            runtime::generate_timing_requests(opts.requests, &opts.arrival, opts.seed)
        }
        .map_err(|e| FlowError::Backend(e.to_string()))?;
        runtime::serve_fleet(boards, &self.names, &modules, &kernels, &requests, fopts)
            .map_err(|e| FlowError::Backend(e.to_string()))
    }

    /// Serve the same request stream with batching disabled, no DMA
    /// overlap and no fault injection — the sequential per-request
    /// baseline every speedup figure compares against (timing only).
    pub fn serve_sequential_baseline(
        &self,
        opts: &runtime::RuntimeOptions,
    ) -> Result<runtime::ServiceReport, FlowError> {
        let seq = runtime::RuntimeOptions {
            batch: runtime::BatchPolicy::Disabled,
            overlap_dma: false,
            execute: false,
            faults: zynq::FaultPlan::none(),
            recovery: runtime::RecoveryPolicy::default(),
            online: runtime::OnlinePolicy::default(),
            ..opts.clone()
        };
        Ok(self.serve(&seq)?.report)
    }
}

/// The shared program-level products derived from per-kernel backends:
/// merged PLM plan, synthesized shared memory, stage-labelled HLS
/// reports and the host byte interface. Both [`Pipeline::run_program`]
/// and the joint DSE engine build systems from this one struct, so
/// sweep costs can never diverge from what `ProgramFlow` produces.
#[derive(Debug, Clone)]
pub(crate) struct ProgramBuild {
    pub plan: ProgramMemoryPlan,
    pub memory: MemorySubsystem,
    pub stages: Vec<(String, hls::HlsReport)>,
    pub bytes_in_per_element: usize,
    pub bytes_out_per_element: usize,
    pub handoff_bytes_per_element: usize,
}

impl ProgramBuild {
    /// Merge memory, label stage reports and account the host's
    /// external byte interface for one backend combination.
    pub fn prepare(
        names: &[String],
        cross: &CrossLiveness,
        backends: &[&Backend],
        memory_opts: &mnemosyne::MemoryOptions,
        cross_sharing: bool,
    ) -> ProgramBuild {
        let configs: Vec<&mnemosyne::MnemosyneConfig> =
            backends.iter().map(|b| &b.mnemosyne_config).collect();
        let plan = mnemosyne::merge_configs(&configs, cross, cross_sharing);
        let memory = mnemosyne::synthesize_program(&plan, memory_opts);
        let stages: Vec<(String, hls::HlsReport)> = names
            .iter()
            .zip(backends)
            .map(|(n, b)| (n.clone(), b.hls_report.renamed(n.clone())))
            .collect();
        // Host interface. Under cross-kernel sharing handoff buffers
        // are co-located and never cross the DMA; without it they keep
        // their stand-alone DMA wiring (mirroring `merge_configs`), so
        // the host transfers every kernel's inputs and outputs.
        let mut bytes_in = 0usize;
        let mut bytes_out = 0usize;
        for (k, be) in backends.iter().enumerate() {
            for p in &be.kernel.params {
                let external =
                    !cross_sharing || cross.info(k, &p.name).map(|s| s.external).unwrap_or(false);
                if !external {
                    continue;
                }
                match p.role {
                    ParamRole::Input => bytes_in += p.words * 8,
                    ParamRole::Output => bytes_out += p.words * 8,
                    ParamRole::Temp => {}
                }
            }
        }
        ProgramBuild {
            plan,
            memory,
            stages,
            bytes_in_per_element: bytes_in,
            bytes_out_per_element: bytes_out,
            handoff_bytes_per_element: if cross_sharing {
                cross.handoff_words() * 8
            } else {
                0
            },
        }
    }

    /// The host program for one replication choice.
    pub fn host_for(&self, cfg: ProgramSystemConfig) -> ProgramHostProgram {
        ProgramHostProgram {
            config: cfg,
            stage_names: self.stages.iter().map(|(n, _)| n.clone()).collect(),
            bytes_in_per_element: self.bytes_in_per_element,
            bytes_out_per_element: self.bytes_out_per_element,
            handoff_bytes_per_element: self.handoff_bytes_per_element,
        }
    }

    /// Build the system for one replication choice (`None` when it
    /// exceeds the platform's board).
    pub fn design_for(
        &self,
        platform: &sysgen::Platform,
        cfg: ProgramSystemConfig,
    ) -> Option<MultiSystemDesign> {
        MultiSystemDesign::build(
            platform,
            &self.stages,
            &self.memory,
            cfg.clone(),
            self.host_for(cfg),
        )
    }
}

/// The program-flow entry point.
pub struct ProgramFlow;

impl ProgramFlow {
    /// Compile a (possibly multi-kernel) CFDlang source through the
    /// complete program flow on a fresh [`Pipeline`].
    pub fn compile(source: &str, opts: &ProgramOptions) -> Result<ProgramArtifacts, FlowError> {
        Pipeline::new().run_program(source, opts)
    }

    /// Compile against a shared [`crate::CompileCache`]: every kernel's
    /// scheduling stage is memoized under its content hash. Artifacts
    /// are bit-identical to an uncached compile; the program
    /// [`StageTimings`](crate::StageTimings) carry the cache counters.
    pub fn compile_cached(
        source: &str,
        opts: &ProgramOptions,
        cache: Arc<crate::CompileCache>,
    ) -> Result<ProgramArtifacts, FlowError> {
        Pipeline::with_cache(cache).run_program(source, opts)
    }
}

impl Pipeline {
    /// Parse and type-check a (possibly multi-kernel) source: one
    /// [`Frontend`] per kernel, in execution order. Counts as a single
    /// frontend invocation.
    pub fn program_frontend(&self, source: &str) -> Result<Vec<(String, Frontend)>, FlowError> {
        let t = Instant::now();
        let set = cfdlang::parse_set(source)?;
        let typed = cfdlang::check_set(&set)?;
        self.count_frontend();
        let elapsed = t.elapsed().as_secs_f64() / typed.kernels.len().max(1) as f64;
        Ok(typed
            .kernels
            .into_iter()
            .map(|k| {
                (
                    k.name,
                    Frontend {
                        typed: Arc::new(k.typed),
                        elapsed_s: elapsed,
                    },
                )
            })
            .collect())
    }

    /// The complete program flow: per-kernel stages, the cross-kernel
    /// link stage, program-wide memory synthesis and the multi-system
    /// stage.
    pub fn run_program(
        &self,
        source: &str,
        opts: &ProgramOptions,
    ) -> Result<ProgramArtifacts, FlowError> {
        let oracle_base = polyhedra::OracleCounters::snapshot();
        let fronts = self.program_frontend(source)?;
        let names: Vec<String> = fronts.iter().map(|(n, _)| n.clone()).collect();
        // Per-kernel options: the program stage owns the system choice.
        let kopts = FlowOptions {
            system: None,
            ..opts.flow.clone()
        };
        // The per-kernel middle end + schedule stages are independent:
        // fan them over `jobs` workers (kernel `i` goes to worker
        // `i % jobs`), then reassemble in kernel order, so the artifact
        // stream is bit-identical to the serial compile. When several
        // kernels fan out at once the intra-kernel liveness stays serial
        // — one level of parallelism is enough to cover the cores.
        let jobs = crate::resolve_jobs(opts.flow.jobs).min(fronts.len().max(1));
        let scheds: Vec<Scheduled> = if jobs <= 1 {
            let mut scheds = Vec::with_capacity(fronts.len());
            for (_, fe) in &fronts {
                let me = self.middle_end(fe, &kopts)?;
                scheds.push(self.schedule(&me, &kopts));
            }
            scheds
        } else {
            let inner = FlowOptions {
                jobs: 1,
                ..kopts.clone()
            };
            let mut indexed: Vec<(usize, Result<Scheduled, FlowError>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..jobs)
                        .map(|w| {
                            let fronts = &fronts;
                            let inner = &inner;
                            scope.spawn(move || {
                                (w..fronts.len())
                                    .step_by(jobs)
                                    .map(|i| {
                                        let r = self
                                            .middle_end(&fronts[i].1, inner)
                                            .map(|me| self.schedule(&me, inner));
                                        (i, r)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("program compile worker panicked"))
                        .collect()
                });
            indexed.sort_by_key(|(i, _)| *i);
            // Deterministic error selection: the first failing kernel in
            // program order wins, exactly as in the serial loop.
            indexed
                .into_iter()
                .map(|(_, r)| r)
                .collect::<Result<Vec<Scheduled>, FlowError>>()?
        };
        let link = self.link(&names, &scheds)?;
        let backends: Vec<Backend> = if jobs <= 1 {
            scheds.iter().map(|sc| self.backend(sc, &kopts)).collect()
        } else {
            let mut indexed: Vec<(usize, Backend)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|w| {
                        let scheds = &scheds;
                        let kopts = &kopts;
                        scope.spawn(move || {
                            (w..scheds.len())
                                .step_by(jobs)
                                .map(|i| (i, self.backend(&scheds[i], kopts)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("backend worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, be)| be).collect()
        };
        let mut art = self.finish_program(opts, fronts, scheds, link, backends)?;
        art.timings.oracle = polyhedra::OracleCounters::snapshot().since(oracle_base);
        Ok(art)
    }

    /// Program memory + system construction from already-compiled
    /// per-kernel stage products (the joint-DSE entry point).
    pub(crate) fn finish_program(
        &self,
        opts: &ProgramOptions,
        fronts: Vec<(String, Frontend)>,
        scheds: Vec<Scheduled>,
        link: LinkStage,
        backends: Vec<Backend>,
    ) -> Result<ProgramArtifacts, FlowError> {
        let names: Vec<String> = fronts.iter().map(|(n, _)| n.clone()).collect();
        let t_sys = Instant::now();
        self.count_system();
        let cross = Arc::clone(&link.cross);

        // Program memory + stage reports + host byte interface (shared
        // with the joint DSE engine).
        let brefs: Vec<&Backend> = backends.iter().collect();
        let build = ProgramBuild::prepare(
            &names,
            &cross,
            &brefs,
            &opts.flow.memory,
            opts.cross_sharing,
        );

        // Replication: the requested configuration or the largest
        // feasible uniform k = m.
        if let Some(c) = &opts.system {
            if c.ks.len() != names.len() {
                return Err(FlowError::Backend(format!(
                    "replication lists {} stages but the program has {}",
                    c.ks.len(),
                    names.len()
                )));
            }
            if !c.valid() {
                return Err(FlowError::Backend(format!(
                    "invalid replication ks={:?}, m={}: m must be a power-of-two multiple of every k",
                    c.ks, c.m
                )));
            }
        }
        let cfg = match &opts.system {
            Some(c) => Some(c.clone()),
            None => {
                sysgen::max_equal_program_config(&opts.flow.platform, &build.stages, &build.memory)
            }
        };
        let (system, host_source) = match cfg {
            Some(c) => {
                let host_src = build.host_for(c.clone()).to_c(opts.flow.elements);
                let design = build.design_for(&opts.flow.platform, c.clone());
                if design.is_none() && opts.system.is_some() {
                    return Err(FlowError::DoesNotFit {
                        k: c.ks.iter().copied().max().unwrap_or(0),
                        m: c.m,
                        board: opts.flow.platform.board.name.clone(),
                    });
                }
                (design, host_src)
            }
            None => (None, String::new()),
        };
        let ProgramBuild {
            plan: memory_plan,
            memory,
            ..
        } = build;
        let system_s = t_sys.elapsed().as_secs_f64();

        // Per-kernel artifacts, assembled exactly like the single-kernel
        // flow (so the no-sharing program is bit-identical per kernel).
        let kopts = FlowOptions {
            system: None,
            ..opts.flow.clone()
        };
        let timings = StageTimings {
            frontend_s: fronts.iter().map(|(_, f)| f.elapsed_s).sum(),
            middle_end_s: scheds.iter().map(|s| s.middle.elapsed_s).sum(),
            schedule_s: scheds.iter().map(|s| s.elapsed_s).sum(),
            link_s: link.elapsed_s,
            backend_s: backends.iter().map(|b| b.elapsed_s).sum(),
            system_s,
            cache: self.cache_counters(),
            oracle: polyhedra::OracleCounters::default(),
        };
        let kernels: Vec<Artifacts> = fronts
            .iter()
            .zip(&scheds)
            .zip(backends)
            .map(|(((_, fe), sc), be)| {
                Artifacts::assemble(
                    fe,
                    sc,
                    be,
                    crate::pipeline::SystemStage {
                        system: None,
                        host_source: String::new(),
                        elapsed_s: 0.0,
                    },
                    &kopts,
                )
            })
            .collect();
        Ok(ProgramArtifacts {
            names,
            kernels,
            cross,
            memory_plan,
            memory,
            system,
            host_source,
            options: opts.clone(),
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Flow;

    #[test]
    fn simulation_step_compiles_into_one_system() {
        let src = cfdlang::examples::simulation_step(4);
        let art = ProgramFlow::compile(&src, &ProgramOptions::default()).unwrap();
        assert_eq!(art.kernel_count(), 3);
        assert_eq!(
            art.names,
            vec!["interpolate", "inverse_helmholtz", "project"]
        );
        let sys = art.system.as_ref().expect("program fits");
        assert_eq!(sys.stages.len(), 3);
        // Cross-kernel sharing beats the concatenated per-kernel PLMs.
        assert!(art.memory.brams < art.per_kernel_plm_brams());
        assert!(art.memory_plan.cross_edges > 0);
        // The chain simulates and verifies end-to-end.
        let r = art
            .simulate(&SimConfig {
                elements: 64,
                ..Default::default()
            })
            .unwrap();
        assert_eq!(r.stage_exec_s.len(), 3);
        assert!(r.total_s > 0.0);
        assert!(art.verify(1, 3).unwrap().bitexact);
    }

    #[test]
    fn single_kernel_source_is_degenerate_program() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let art = ProgramFlow::compile(&src, &ProgramOptions::default()).unwrap();
        assert_eq!(art.names, vec!["main"]);
        assert!(art.cross.handoffs.is_empty());
        let single = Flow::compile(&src, &FlowOptions::default()).unwrap();
        let k = &art.kernels[0];
        assert_eq!(k.c_source, single.c_source);
        assert_eq!(k.hls_report, single.hls_report);
        assert_eq!(k.memory, single.memory);
        // The degenerate program system picks the same k = m as the
        // single-kernel flow.
        let (ps, ss) = (
            art.system.as_ref().unwrap(),
            single.system.as_ref().unwrap(),
        );
        assert_eq!(ps.config.ks, vec![ss.config.k]);
        assert_eq!(ps.config.m, ss.config.m);
        assert_eq!(
            (ps.luts, ps.ffs, ps.dsps, ps.brams),
            (ss.luts, ss.ffs, ss.dsps, ss.brams)
        );
    }

    #[test]
    fn stage_counters_reflect_program_shape() {
        let p = Pipeline::new();
        let art = p
            .run_program(
                &cfdlang::examples::axpy_chain(3),
                &ProgramOptions::default(),
            )
            .unwrap();
        assert_eq!(art.kernel_count(), 2);
        let c = p.counters();
        assert_eq!(c.frontend, 1);
        assert_eq!(c.middle_end, 2);
        assert_eq!(c.schedule, 2);
        assert_eq!(c.link, 1);
        assert_eq!(c.backend, 2);
        assert_eq!(c.system, 1);
        assert!(art.timings.total_s() > 0.0);
    }

    #[test]
    fn without_cross_sharing_handoffs_pay_dma() {
        let src = cfdlang::examples::axpy_chain(4);
        let shared = ProgramFlow::compile(&src, &ProgramOptions::default()).unwrap();
        let copied = ProgramFlow::compile(
            &src,
            &ProgramOptions {
                cross_sharing: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (hs, hc) = (
            &shared.system.as_ref().unwrap().host,
            &copied.system.as_ref().unwrap().host,
        );
        // The handoff w (64 words) moves from the fabric to the DMA.
        assert_eq!(hs.handoff_bytes_per_element, 64 * 8);
        assert_eq!(hc.handoff_bytes_per_element, 0);
        assert_eq!(
            hc.bytes_in_per_element,
            hs.bytes_in_per_element + 64 * 8,
            "consumer input now loaded by the host"
        );
        assert_eq!(
            hc.bytes_out_per_element,
            hs.bytes_out_per_element + 64 * 8,
            "producer output now drained by the host"
        );
        // And the simulated transfers actually grow.
        let sim = |a: &ProgramArtifacts| {
            a.simulate(&SimConfig {
                elements: 64,
                ..Default::default()
            })
            .unwrap()
            .transfer_s
        };
        assert!(sim(&copied) > sim(&shared));
    }

    #[test]
    fn single_kernel_block_source_compiles_everywhere() {
        // `kernel solo { ... }` is the degenerate one-kernel set and
        // must work through the single-kernel entry points too.
        let src = format!("kernel solo {{\n{}}}\n", cfdlang::examples::axpy(3));
        let art = crate::Flow::compile(&src, &FlowOptions::default()).unwrap();
        assert!(art.verify(1, 2).unwrap().bitexact);
        let prog = ProgramFlow::compile(&src, &ProgramOptions::default()).unwrap();
        assert_eq!(prog.names, vec!["solo"]);
        let engine = crate::dse::DseEngine::prepare(&src, &FlowOptions::default()).unwrap();
        assert_eq!(engine.kernel_name(), "solo");
    }

    #[test]
    fn stage_sources_and_reports_carry_stage_names() {
        let art = ProgramFlow::compile(
            &cfdlang::examples::axpy_chain(3),
            &ProgramOptions::default(),
        )
        .unwrap();
        // Emission for the linked system uses program-unique symbols...
        assert!(art.stage_c_source(0).contains("void axpy_scale_body("));
        assert!(art.stage_c_source(1).contains("void axpy_update_body("));
        let sys = art.system.as_ref().unwrap();
        assert_eq!(sys.stages[0].kernel.kernel, "axpy_scale");
        assert_eq!(sys.stages[1].kernel.kernel, "axpy_update");
        // ...while the per-kernel artifacts keep their stand-alone
        // shape (the bit-identity guarantee).
        assert!(art.kernels[0].c_source.contains("void kernel_body("));
    }

    #[test]
    fn serving_batches_beat_sequential_per_request() {
        let src = cfdlang::examples::axpy_chain(4);
        let art = ProgramFlow::compile(&src, &ProgramOptions::default()).unwrap();
        let m = art.system.as_ref().unwrap().config.m;
        assert!(m >= 2, "auto-picked system must batch (m = {m})");
        let opts = runtime::RuntimeOptions {
            requests: 32,
            ..Default::default()
        };
        let served = art.serve(&opts).unwrap();
        let seq = art.serve_sequential_baseline(&opts).unwrap();
        assert!(
            served.report.throughput_rps >= 2.0 * seq.throughput_rps,
            "batched {} req/s vs sequential {} req/s",
            served.report.throughput_rps,
            seq.throughput_rps
        );
        assert!(served.report.latency_p50_s <= served.report.latency_p99_s);
        assert_eq!(served.report.traces.len(), 32);
        // Timing-only by default: no functional outputs materialized.
        assert!(served.outputs.is_empty());
    }

    #[test]
    fn requested_oversized_program_errors() {
        let src = cfdlang::examples::simulation_step(4);
        let opts = ProgramOptions {
            system: Some(ProgramSystemConfig::uniform(64, 64, 3)),
            ..Default::default()
        };
        let err = ProgramFlow::compile(&src, &opts).unwrap_err();
        assert!(matches!(err, FlowError::DoesNotFit { .. }));
    }

    #[test]
    fn handoff_buffers_leave_the_host_interface() {
        let src = cfdlang::examples::simulation_step(4);
        let art = ProgramFlow::compile(&src, &ProgramOptions::default()).unwrap();
        let host = &art.system.as_ref().unwrap().host;
        // u and v hand off in-fabric (64 words each at p=4).
        assert_eq!(host.handoff_bytes_per_element, 2 * 64 * 8);
        // External inputs: P, u0, S, D, Q; external output: w only.
        assert_eq!(host.bytes_in_per_element, (16 + 64 + 16 + 64 + 16) * 8);
        assert_eq!(host.bytes_out_per_element, 64 * 8);
    }
}
