//! Content-hashed incremental compile cache.
//!
//! The scheduling stage (reschedule + liveness + compatibility graph)
//! dominates the cost of a compile; its products depend only on the
//! canonicalized tensor IR, the scheduler options and (conservatively)
//! the target platform and clock. [`CompileCache`] memoizes those
//! products under a stable 128-bit FNV-1a content hash, so a re-compile
//! of unchanged source skips the stage entirely — in process via an
//! in-memory map, and across processes via an optional on-disk store.
//!
//! ## Cache key
//!
//! [`schedule_key`] hashes, in order:
//!
//! 1. the schema string [`SCHEMA`] (versioning: a format change makes
//!    every old key unreachable),
//! 2. the active polyhedra-oracle signature
//!    ([`polyhedra::oracle_signature`]): scheduling products embed
//!    emptiness-driven decisions, so a product computed under one
//!    oracle configuration is never served under another,
//! 3. the canonical text of the tensor IR module (**after**
//!    canonicalization, so `factorize`/`clean` are captured by their
//!    effect rather than their flag values),
//! 4. the `Debug` rendering of [`SchedulerOptions`],
//! 5. the platform id and the bit pattern of the HLS clock.
//!
//! The worker count ([`FlowOptions::jobs`]) is deliberately excluded:
//! artifacts are bit-identical for every value.
//!
//! ## On-disk layout
//!
//! Each entry is one whitespace-token text file
//! `<032x-key>.cfdcache` inside the cache directory, starting with the
//! [`SCHEMA`] line. Writes go through a temporary file in the same
//! directory followed by an atomic rename, so a concurrent reader never
//! observes a half-written entry. A file that fails to parse (truncated,
//! schema mismatch, hand-edited) is **invalidated**: counted, removed,
//! and treated as a miss.
//!
//! ```
//! use cfd_core::cache::{schedule_key, CompileCache};
//! use cfd_core::{FlowOptions, Pipeline};
//! use std::sync::Arc;
//!
//! let cache = Arc::new(CompileCache::in_memory());
//! let p = Pipeline::with_cache(Arc::clone(&cache));
//! let src = cfdlang::examples::inverse_helmholtz(4);
//! let opts = FlowOptions::default();
//! let fe = p.frontend(&src).unwrap();
//! let me = p.middle_end(&fe, &opts).unwrap();
//! let cold = p.schedule(&me, &opts);
//! let warm = p.schedule(&me, &opts);
//! assert_eq!(cache.counters().hits, 1);
//! assert_eq!(p.counters().schedule, 1); // the stage ran once
//! assert_eq!(cold.schedule, warm.schedule);
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use polyhedra::{BasicSet, Constraint, ConstraintKind, LinExpr, Set, Space, System};
use pschedule::{CompatKind, CompatibilityGraph, Liveness, Schedule};
use teil::layout::ArrayId;
use teil::Module;

use crate::FlowOptions;

/// Format version: first token of every key and every on-disk entry.
/// Bump on any change to the serialization below — old entries then
/// simply never match and age out.
pub const SCHEMA: &str = "cfdfpga-cache-v2";

/// File extension of on-disk entries.
const EXT: &str = "cfdcache";

/// The cached products of one scheduling-stage run.
#[derive(Debug, Clone)]
pub struct CachedSchedule {
    pub schedule: Arc<Schedule>,
    pub liveness: Arc<Liveness>,
    pub compat: Arc<CompatibilityGraph>,
}

/// Hit/miss/invalidation counters of a [`CompileCache`].
///
/// `hits` counts in-memory hits, `disk_hits` entries revived from the
/// on-disk store (a disk hit is *not* also counted as an in-memory hit),
/// `misses` lookups that found nothing, `stores` entries written, and
/// `invalidations` on-disk entries that failed to parse and were
/// removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    pub hits: usize,
    pub disk_hits: usize,
    pub misses: usize,
    pub stores: usize,
    pub invalidations: usize,
}

impl CacheCounters {
    /// Total lookups served from either cache layer.
    pub fn total_hits(&self) -> usize {
        self.hits + self.disk_hits
    }
}

/// A two-layer (in-memory + optional on-disk) store of scheduling-stage
/// products, keyed by [`schedule_key`]. All methods are `&self`; the
/// cache is shared across pipelines and threads behind an [`Arc`].
#[derive(Debug, Default)]
pub struct CompileCache {
    mem: Mutex<HashMap<u128, Arc<CachedSchedule>>>,
    dir: Option<PathBuf>,
    hits: AtomicUsize,
    disk_hits: AtomicUsize,
    misses: AtomicUsize,
    stores: AtomicUsize,
    invalidations: AtomicUsize,
}

impl CompileCache {
    /// A process-local cache with no on-disk persistence.
    pub fn in_memory() -> CompileCache {
        CompileCache::default()
    }

    /// A cache persisted under `dir`. Creates the directory if missing
    /// and probes it for writability, so an unusable location fails
    /// here — once — rather than silently on every store.
    pub fn with_dir(dir: impl Into<PathBuf>) -> io::Result<CompileCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let probe = dir.join(format!(".probe.{}", std::process::id()));
        std::fs::write(&probe, SCHEMA)?;
        std::fs::remove_file(&probe)?;
        Ok(CompileCache {
            dir: Some(dir),
            ..CompileCache::default()
        })
    }

    /// The on-disk directory, if this cache persists.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Number of entries resident in memory.
    pub fn len(&self) -> usize {
        self.mem.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look `key` up: memory first, then disk. A disk hit is revived
    /// into memory; a corrupt disk entry is invalidated (counted and
    /// removed) and reported as a miss.
    pub fn lookup(&self, key: u128) -> Option<Arc<CachedSchedule>> {
        if let Some(e) = self.mem.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(e));
        }
        if let Some(dir) = &self.dir {
            let path = entry_path(dir, key);
            if let Ok(text) = std::fs::read_to_string(&path) {
                match parse_entry(&text) {
                    Some(e) => {
                        let e = Arc::new(e);
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        self.mem.lock().unwrap().insert(key, Arc::clone(&e));
                        return Some(e);
                    }
                    None => {
                        self.invalidations.fetch_add(1, Ordering::Relaxed);
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert an entry; persists to disk when a directory is attached.
    /// Disk write failures are swallowed — the in-memory layer still
    /// serves the entry, and the next process recompiles.
    pub fn store(&self, key: u128, entry: Arc<CachedSchedule>) {
        self.mem.lock().unwrap().insert(key, Arc::clone(&entry));
        self.stores.fetch_add(1, Ordering::Relaxed);
        if let Some(dir) = &self.dir {
            let text = write_entry(&entry);
            let tmp = dir.join(format!(".{:032x}.tmp.{}", key, std::process::id()));
            if std::fs::write(&tmp, text).is_ok()
                && std::fs::rename(&tmp, entry_path(dir, key)).is_err()
            {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }

    /// `(entries, bytes)` of the on-disk store at `dir`.
    pub fn disk_stats(dir: &Path) -> io::Result<(usize, u64)> {
        let mut entries = 0usize;
        let mut bytes = 0u64;
        for f in std::fs::read_dir(dir)? {
            let f = f?;
            if f.path().extension().and_then(|e| e.to_str()) == Some(EXT) {
                entries += 1;
                bytes += f.metadata()?.len();
            }
        }
        Ok((entries, bytes))
    }

    /// Remove every cache entry under `dir`; returns how many.
    pub fn clear_disk(dir: &Path) -> io::Result<usize> {
        let mut removed = 0usize;
        for f in std::fs::read_dir(dir)? {
            let path = f?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(EXT) {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

fn entry_path(dir: &Path, key: u128) -> PathBuf {
    dir.join(format!("{:032x}.{}", key, EXT))
}

// ---------------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------------

/// 128-bit FNV-1a. Stable across platforms and runs — the property the
/// on-disk store depends on (`DefaultHasher` guarantees neither).
#[derive(Debug, Clone)]
pub struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    pub fn new() -> Fnv128 {
        Fnv128(Self::OFFSET)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        // Separator byte: distinguishes ("ab","c") from ("a","bc").
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    pub fn finish(&self) -> u128 {
        self.0
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

/// The content key of a scheduling-stage run: canonicalized module text
/// plus every option that (conservatively) reaches the stage, plus the
/// active polyhedra-oracle configuration. See the module docs for the
/// exact field list.
///
/// The oracle signature matters because scheduling products embed
/// results of emptiness-driven choices (liveness sets, compatibility
/// edges): a product computed under one oracle must never be served
/// when another oracle — with possibly different verdict-order-sensitive
/// tie-breaks — is active, even across processes via the disk store.
pub fn schedule_key(module: &Module, opts: &FlowOptions) -> u128 {
    let mut h = Fnv128::new();
    h.update(SCHEMA.as_bytes());
    h.update(polyhedra::oracle_signature().as_bytes());
    h.update(module.to_string().as_bytes());
    h.update(format!("{:?}", opts.scheduler).as_bytes());
    h.update(opts.platform.id.as_bytes());
    h.update(&opts.hls.clock_mhz.to_bits().to_le_bytes());
    h.finish()
}

// ---------------------------------------------------------------------------
// Serialization (hand-rolled: the dependency set has no serde_json)
// ---------------------------------------------------------------------------
//
// Whitespace-separated tokens; strings are length-prefixed (`<len> <bytes>`)
// so tuple and dimension names survive any content. The writers below
// double as a canonical printer: two semantically identical products
// serialize to the same text, which the differential tests exploit.
//
// Two measured size levers keep disk-warm revival fast (it must stay
// 2x under a cold compile, and the parse IS the disk overhead):
//
// * constraint coefficients are ~80% zeros on real schedules, so each
//   row stores `nnz (index value)...` instead of a dense vector;
// * the liveness maps repeat whole sets (a single-write array's `live`
//   and `writes_at` are often identical), so each set is written once
//   (`s <body>`) and repeats become back-references (`r <k>`) into the
//   table of distinct sets in first-appearance order — and likewise
//   every part of a set shares the set's space, so spaces are written
//   once (`n <body>`) and repeats become `p <k>` references.

/// Serialize an entry to the on-disk text format.
pub fn write_entry(e: &CachedSchedule) -> String {
    let mut s = String::new();
    s.push_str(SCHEMA);
    s.push('\n');
    w_schedule(&mut s, &e.schedule);
    w_liveness(&mut s, &e.liveness);
    w_compat(&mut s, &e.compat);
    s.push_str("end\n");
    s
}

/// Parse the on-disk text format; `None` on any structural mismatch.
pub fn parse_entry(text: &str) -> Option<CachedSchedule> {
    let mut c = Cursor { text, pos: 0 };
    if c.tok()? != SCHEMA {
        return None;
    }
    let schedule = r_schedule(&mut c)?;
    let liveness = r_liveness(&mut c)?;
    let compat = r_compat(&mut c)?;
    if c.tok()? != "end" {
        return None;
    }
    Some(CachedSchedule {
        schedule: Arc::new(schedule),
        liveness: Arc::new(liveness),
        compat: Arc::new(compat),
    })
}

fn w_str(out: &mut String, s: &str) {
    let _ = write!(out, "{} {} ", s.len(), s);
}

fn w_schedule(out: &mut String, sch: &Schedule) {
    let _ = write!(out, "schedule {} {} ", sch.dim, sch.seq.len());
    for v in &sch.seq {
        let _ = write!(out, "{} ", v);
    }
    for p in &sch.perms {
        let _ = write!(out, "{} ", p.len());
        for v in p {
            let _ = write!(out, "{} ", v);
        }
    }
    for v in &sch.micro {
        let _ = write!(out, "{} ", v);
    }
    out.push('\n');
}

fn w_space(out: &mut String, sp: &Space) {
    w_str(out, &sp.tuple);
    let _ = write!(out, "{} ", sp.dims.len());
    for d in &sp.dims {
        w_str(out, d);
    }
}

/// Write one space, deduplicated against `spaces` (same scheme as
/// [`w_set`]): a repeat becomes `p <k>`, a new space `n <body>`.
fn w_space_ref<'a>(out: &mut String, sp: &'a Space, spaces: &mut Vec<&'a Space>) {
    if let Some(k) = spaces.iter().position(|s| *s == sp) {
        let _ = write!(out, "p {} ", k);
        return;
    }
    spaces.push(sp);
    out.push_str("n ");
    w_space(out, sp);
}

fn w_system(out: &mut String, sys: &System) {
    let _ = write!(
        out,
        "{} {} {} ",
        sys.n_vars(),
        if sys.known_infeasible() { 1 } else { 0 },
        sys.constraints().len()
    );
    for con in sys.constraints() {
        let kind = match con.kind {
            ConstraintKind::Eq => 0,
            ConstraintKind::GeZero => 1,
        };
        let nnz = con.expr.coeffs.iter().filter(|&&v| v != 0).count();
        let _ = write!(out, "{} {} ", kind, nnz);
        for (i, &v) in con.expr.coeffs.iter().enumerate() {
            if v != 0 {
                let _ = write!(out, "{} {} ", i, v);
            }
        }
        let _ = write!(out, "{} ", con.expr.constant);
    }
}

/// Write one set, deduplicated against `seen` (the distinct sets
/// already written, in first-appearance order): a repeat becomes a
/// back-reference `r <k>`, a new set is written in full as `s <body>`.
fn w_set<'a>(out: &mut String, set: &'a Set, seen: &mut Vec<&'a Set>, spaces: &mut Vec<&'a Space>) {
    if let Some(k) = seen.iter().position(|s| *s == set) {
        let _ = writeln!(out, "r {}", k);
        return;
    }
    seen.push(set);
    out.push_str("s ");
    w_space_ref(out, &set.space, spaces);
    let _ = write!(out, "{} ", set.parts.len());
    for part in &set.parts {
        w_space_ref(out, &part.space, spaces);
        w_system(out, part.system());
    }
    out.push('\n');
}

fn w_liveness(out: &mut String, lv: &Liveness) {
    let _ = writeln!(out, "liveness {} {}", lv.dim, lv.arrays.len());
    let mut seen: Vec<&Set> = Vec::new();
    let mut spaces: Vec<&Space> = Vec::new();
    for &arr in &lv.arrays {
        let _ = write!(out, "{} ", arr.0);
        for m in [&lv.live, &lv.writes_at, &lv.reads_at] {
            w_set(out, &m[&arr], &mut seen, &mut spaces);
        }
    }
    out.push('\n');
}

fn w_compat(out: &mut String, cg: &CompatibilityGraph) {
    let _ = writeln!(out, "compat {} {}", cg.nodes.len(), cg.edges.len());
    for (arr, name, words, iface) in &cg.nodes {
        let _ = write!(out, "{} ", arr.0);
        w_str(out, name);
        let _ = write!(out, "{} {} ", words, if *iface { 1 } else { 0 });
    }
    for (a, b, kind) in &cg.edges {
        let k = match kind {
            CompatKind::AddressSpace => 0,
            CompatKind::MemoryInterface => 1,
        };
        let _ = write!(out, "{} {} {} ", a, b, k);
    }
    out.push('\n');
}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Next whitespace-delimited token.
    fn tok(&mut self) -> Option<&'a str> {
        let bytes = self.text.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        let start = self.pos;
        while self.pos < bytes.len() && !bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        (self.pos > start).then(|| &self.text[start..self.pos])
    }

    /// Integer tokens are the bulk of an entry (every constraint
    /// coefficient), so they are scanned byte-by-byte instead of going
    /// through token slicing + `str::parse` — the disk-warm revival is
    /// dominated by this loop.
    fn i64(&mut self) -> Option<i64> {
        let bytes = self.text.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        let neg = self.pos < bytes.len() && bytes[self.pos] == b'-';
        if neg {
            self.pos += 1;
        }
        let start = self.pos;
        let mut value = 0i64;
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
            value = value
                .checked_mul(10)?
                .checked_add((bytes[self.pos] - b'0') as i64)?;
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        // The digit run must end the token — "12x" is not an integer.
        if self.pos < bytes.len() && !bytes[self.pos].is_ascii_whitespace() {
            return None;
        }
        Some(if neg { -value } else { value })
    }

    fn usize(&mut self) -> Option<usize> {
        let bytes = self.text.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        let start = self.pos;
        let mut value = 0usize;
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
            value = value
                .checked_mul(10)?
                .checked_add((bytes[self.pos] - b'0') as usize)?;
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        if self.pos < bytes.len() && !bytes[self.pos].is_ascii_whitespace() {
            return None;
        }
        Some(value)
    }

    /// A length-prefixed string: `<len> <exactly len bytes>`.
    fn string(&mut self) -> Option<String> {
        let len = self.usize()?;
        let bytes = self.text.as_bytes();
        if self.pos >= bytes.len() || bytes[self.pos] != b' ' {
            return None;
        }
        self.pos += 1;
        let end = self.pos.checked_add(len)?;
        if end > bytes.len() || !self.text.is_char_boundary(end) {
            return None;
        }
        let s = &self.text[self.pos..end];
        self.pos = end;
        Some(s.to_string())
    }
}

fn r_schedule(c: &mut Cursor) -> Option<Schedule> {
    if c.tok()? != "schedule" {
        return None;
    }
    let dim = c.usize()?;
    let n = c.usize()?;
    let seq = (0..n).map(|_| c.i64()).collect::<Option<Vec<_>>>()?;
    let mut perms = Vec::with_capacity(n);
    for _ in 0..n {
        let rank = c.usize()?;
        perms.push((0..rank).map(|_| c.usize()).collect::<Option<Vec<_>>>()?);
    }
    let micro = (0..n).map(|_| c.i64()).collect::<Option<Vec<_>>>()?;
    Some(Schedule {
        dim,
        seq,
        perms,
        micro,
    })
}

fn r_space(c: &mut Cursor) -> Option<Space> {
    let tuple = c.string()?;
    let n = c.usize()?;
    let dims = (0..n).map(|_| c.string()).collect::<Option<Vec<_>>>()?;
    Some(Space { tuple, dims })
}

/// Read one space slot: `n <body>` (new, pushed onto the table) or a
/// back-reference `p <k>` (cloned from the table).
fn r_space_ref(c: &mut Cursor, spaces: &mut Vec<Space>) -> Option<Space> {
    match c.tok()? {
        "p" => {
            let k = c.usize()?;
            spaces.get(k).cloned()
        }
        "n" => {
            let sp = r_space(c)?;
            spaces.push(sp.clone());
            Some(sp)
        }
        _ => None,
    }
}

fn r_system(c: &mut Cursor) -> Option<System> {
    let n_vars = c.usize()?;
    let infeasible = c.usize()? != 0;
    let rows = c.usize()?;
    if infeasible {
        // An infeasible system stores no rows.
        return (rows == 0).then(|| System::infeasible(n_vars));
    }
    let mut parsed = Vec::with_capacity(rows);
    for _ in 0..rows {
        let kind = match c.usize()? {
            0 => ConstraintKind::Eq,
            1 => ConstraintKind::GeZero,
            _ => return None,
        };
        // Sparse row: `nnz (index value)...` with strictly increasing
        // indices and no explicit zeros, so the writer's output is the
        // only text that parses back to a given row (canonical printer).
        let nnz = c.usize()?;
        if nnz > n_vars {
            return None;
        }
        let mut coeffs = vec![0i64; n_vars];
        let mut prev = None;
        for _ in 0..nnz {
            let idx = c.usize()?;
            let v = c.i64()?;
            if idx >= n_vars || v == 0 || prev.is_some_and(|p| idx <= p) {
                return None;
            }
            coeffs[idx] = v;
            prev = Some(idx);
        }
        let constant = c.i64()?;
        parsed.push(Constraint {
            kind,
            expr: LinExpr { coeffs, constant },
        });
    }
    // Rows were normalized and deduplicated when first added, so revive
    // them verbatim instead of re-normalizing one row at a time — this is
    // the disk-warm hot path (debug builds re-verify the canonical claim).
    Some(System::from_canonical_rows(n_vars, parsed))
}

/// Read one set slot: either a new set (`s`, parsed in full and pushed
/// onto the distinct-set table) or a back-reference (`r <k>`). Returns
/// the slot's index into `seen`; the caller materializes owned sets at
/// the end so each distinct set is parsed once and cloned only for its
/// repeats.
fn r_set(c: &mut Cursor, seen: &mut Vec<Set>, spaces: &mut Vec<Space>) -> Option<usize> {
    match c.tok()? {
        "r" => {
            let k = c.usize()?;
            (k < seen.len()).then_some(k)
        }
        "s" => {
            let space = r_space_ref(c, spaces)?;
            let nparts = c.usize()?;
            let mut parts = Vec::with_capacity(nparts);
            for _ in 0..nparts {
                let psp = r_space_ref(c, spaces)?;
                let sys = r_system(c)?;
                parts.push(BasicSet::from_system(psp, sys));
            }
            seen.push(Set { space, parts });
            Some(seen.len() - 1)
        }
        _ => None,
    }
}

fn r_liveness(c: &mut Cursor) -> Option<Liveness> {
    if c.tok()? != "liveness" {
        return None;
    }
    let dim = c.usize()?;
    let n = c.usize()?;
    let mut arrays = Vec::with_capacity(n);
    let mut seen: Vec<Set> = Vec::new();
    let mut spaces: Vec<Space> = Vec::new();
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let arr = ArrayId(c.usize()?);
        arrays.push(arr);
        let live = r_set(c, &mut seen, &mut spaces)?;
        let writes = r_set(c, &mut seen, &mut spaces)?;
        let reads = r_set(c, &mut seen, &mut spaces)?;
        slots.push((arr, [live, writes, reads]));
    }
    // Materialize: the last user of a table entry moves it out, earlier
    // users clone — one parse per distinct set, one clone per repeat.
    let mut uses = vec![0usize; seen.len()];
    for (_, idxs) in &slots {
        for &i in idxs {
            uses[i] += 1;
        }
    }
    let mut pool: Vec<Option<Set>> = seen.into_iter().map(Some).collect();
    let mut take = |i: usize, uses: &mut Vec<usize>| -> Set {
        uses[i] -= 1;
        if uses[i] == 0 {
            pool[i].take().expect("use counts cover every slot")
        } else {
            pool[i]
                .as_ref()
                .expect("use counts cover every slot")
                .clone()
        }
    };
    let mut live = HashMap::new();
    let mut writes_at = HashMap::new();
    let mut reads_at = HashMap::new();
    for (arr, [l, w, r]) in slots {
        live.insert(arr, take(l, &mut uses));
        writes_at.insert(arr, take(w, &mut uses));
        reads_at.insert(arr, take(r, &mut uses));
    }
    Some(Liveness {
        dim,
        arrays,
        live,
        writes_at,
        reads_at,
    })
}

fn r_compat(c: &mut Cursor) -> Option<CompatibilityGraph> {
    if c.tok()? != "compat" {
        return None;
    }
    let nn = c.usize()?;
    let ne = c.usize()?;
    let mut nodes = Vec::with_capacity(nn);
    for _ in 0..nn {
        let arr = ArrayId(c.usize()?);
        let name = c.string()?;
        let words = c.usize()?;
        let iface = c.usize()? != 0;
        nodes.push((arr, name, words, iface));
    }
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        let a = c.usize()?;
        let b = c.usize()?;
        let kind = match c.usize()? {
            0 => CompatKind::AddressSpace,
            1 => CompatKind::MemoryInterface,
            _ => return None,
        };
        edges.push((a, b, kind));
    }
    Some(CompatibilityGraph { nodes, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;

    fn scheduled_products(src: &str, opts: &FlowOptions) -> CachedSchedule {
        let p = Pipeline::new();
        let fe = p.frontend(src).unwrap();
        let me = p.middle_end(&fe, opts).unwrap();
        let sc = p.schedule(&me, opts);
        CachedSchedule {
            schedule: sc.schedule,
            liveness: sc.liveness,
            compat: sc.compat,
        }
    }

    fn assert_entries_equal(a: &CachedSchedule, b: &CachedSchedule) {
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(write_entry(a), write_entry(b));
    }

    #[test]
    fn entry_round_trips_bit_identically() {
        let src = cfdlang::examples::inverse_helmholtz(5);
        let opts = FlowOptions::default();
        let entry = scheduled_products(&src, &opts);
        let text = write_entry(&entry);
        let back = parse_entry(&text).expect("round trip parses");
        assert_entries_equal(&entry, &back);
        // The rebuilt entry re-serializes to the same bytes: the format
        // is a canonical printer, not just a round trip.
        assert_eq!(text, write_entry(&back));
    }

    #[test]
    fn corrupt_entries_are_rejected() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let entry = scheduled_products(&src, &FlowOptions::default());
        let text = write_entry(&entry);
        assert!(parse_entry("").is_none());
        assert!(parse_entry("wrong-schema 1 2 3").is_none());
        assert!(parse_entry(&text[..text.len() / 2]).is_none());
        assert!(parse_entry(&text.replace("end", "not-the-end")).is_none());
    }

    #[test]
    fn key_is_stable_and_content_sensitive() {
        let src = cfdlang::examples::inverse_helmholtz(4);
        let opts = FlowOptions::default();
        let p = Pipeline::new();
        let fe = p.frontend(&src).unwrap();
        let me = p.middle_end(&fe, &opts).unwrap();
        let k1 = schedule_key(&me.module, &opts);
        let k2 = schedule_key(&me.module, &opts);
        assert_eq!(k1, k2);
        // jobs is non-semantic: same key.
        let more_jobs = FlowOptions {
            jobs: 7,
            ..opts.clone()
        };
        assert_eq!(k1, schedule_key(&me.module, &more_jobs));
        // Scheduler options and platform are part of the key.
        let mut sched_off = opts.clone();
        sched_off.scheduler.permute = false;
        assert_ne!(k1, schedule_key(&me.module, &sched_off));
        let mut other_clock = opts.clone();
        other_clock.hls.clock_mhz = 150.0;
        assert_ne!(k1, schedule_key(&me.module, &other_clock));
        // Different source, different key.
        let src2 = cfdlang::examples::inverse_helmholtz(6);
        let fe2 = p.frontend(&src2).unwrap();
        let me2 = p.middle_end(&fe2, &opts).unwrap();
        assert_ne!(k1, schedule_key(&me2.module, &opts));
    }

    #[test]
    fn disk_store_revives_and_invalidates() {
        let dir = std::env::temp_dir().join(format!("cfdcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let src = cfdlang::examples::inverse_helmholtz(4);
        let opts = FlowOptions::default();
        let entry = Arc::new(scheduled_products(&src, &opts));
        let key = 0x1234_5678_9abc_def0_u128;

        let cache = CompileCache::with_dir(&dir).unwrap();
        assert!(cache.lookup(key).is_none());
        cache.store(key, Arc::clone(&entry));
        let (entries, bytes) = CompileCache::disk_stats(&dir).unwrap();
        assert_eq!(entries, 1);
        assert!(bytes > 0);

        // A fresh cache (new process, in effect) revives from disk.
        let fresh = CompileCache::with_dir(&dir).unwrap();
        let revived = fresh.lookup(key).expect("disk hit");
        assert_entries_equal(&entry, &revived);
        let c = fresh.counters();
        assert_eq!((c.hits, c.disk_hits, c.misses), (0, 1, 0));
        // Second lookup is served from memory.
        assert!(fresh.lookup(key).is_some());
        assert_eq!(fresh.counters().hits, 1);

        // Corruption is detected, counted and cleaned up.
        let path = dir.join(format!("{:032x}.{}", key, EXT));
        std::fs::write(&path, format!("{SCHEMA} garbage")).unwrap();
        let poisoned = CompileCache::with_dir(&dir).unwrap();
        assert!(poisoned.lookup(key).is_none());
        assert_eq!(poisoned.counters().invalidations, 1);
        assert!(!path.exists(), "corrupt entry removed");

        // clear_disk removes what store wrote.
        cache.store(key, entry);
        assert_eq!(CompileCache::clear_disk(&dir).unwrap(), 1);
        assert_eq!(CompileCache::disk_stats(&dir).unwrap().0, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
