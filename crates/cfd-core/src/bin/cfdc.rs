//! `cfdc` — command-line driver for the CFDlang-to-FPGA flow.
//!
//! ```text
//! cfdc boards
//! cfdc compile  <file.cfd> [--board NAME] [--no-factorize] [--no-sharing]
//!               [--no-decouple] [--no-cross-sharing] [--kernel NAME]
//!               [--emit c|host|ir|dot|report|memory|all] [-o DIR]
//! cfdc simulate <file.cfd> [--board NAME] [--elements N] [--k K] [--m M] [--kernel NAME]
//! cfdc verify   <file.cfd> [--elements N] [--seed S] [--kernel NAME]
//! cfdc explore  <file.cfd> [--board NAME | --boards all|A,B,..] [--grid]
//!               [--jobs N] [--json] [--elements N]
//! ```
//!
//! Every command targets one platform from the catalog (`cfdc boards`
//! lists it; default ZCU106). `explore` lists feasible replications;
//! with `--grid` it runs the full parallel design-space sweep
//! (k × batch × sharing × decoupling) on the staged pipeline — the
//! frontend and middle end compile once, the per-point backend/system
//! stages fan out over `--jobs` workers. With `--boards all` (or a
//! comma-separated list) it sweeps the **platform × clock × grid**
//! portfolio and reports the Pareto frontier of simulated time vs.
//! resource fit across boards.
//!
//! **Multi-kernel programs** (sources with `kernel name { ... }` blocks)
//! compile as a whole into one shared-memory accelerator system —
//! `compile` prints per-kernel *and* aggregate resource tables,
//! `simulate`/`verify` run the chained execution, `explore --grid`
//! sweeps joint design points. `--kernel NAME` instead selects one
//! kernel of the program and compiles it alone.
//!
//! `<file.cfd>` may be a path or one of the built-in kernels:
//! `helmholtz[:p]`, `interpolation[:n:m]`, `sandwich[:n]`, `axpy[:n]`,
//! or the built-in programs `simstep[:p]`, `axpychain[:n]`.

use cfd_core::dse::{DseEngine, DseGrid, ProgramDseEngine};
use cfd_core::program::{ProgramArtifacts, ProgramFlow, ProgramOptions};
use cfd_core::{Flow, FlowOptions};
use mnemosyne::MemoryOptions;
use std::process::exit;
use sysgen::{Platform, ProgramSystemConfig, SystemConfig};
use zynq::SimConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "compile" => cmd_compile(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "explore" => cmd_explore(&args[1..]),
        "boards" => cmd_boards(),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command '{other}'");
            usage();
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "cfdc — CFDlang-to-FPGA flow\n\n\
         USAGE:\n\
         \tcfdc boards\n\
         \tcfdc compile  <kernel> [--board NAME] [--no-factorize] [--no-sharing] [--no-decouple]\n\
         \t              [--no-cross-sharing] [--kernel NAME] [--emit WHAT] [-o DIR]\n\
         \tcfdc simulate <kernel> [--board NAME] [--elements N] [--k K] [--m M] [--kernel NAME]\n\
         \tcfdc verify   <kernel> [--elements N] [--seed S] [--kernel NAME]\n\
         \tcfdc explore  <kernel> [--board NAME | --boards all|A,B,..] [--grid] [--jobs N]\n\
         \t              [--json] [--elements N]\n\n\
         KERNEL: a .cfd file path, a kernel helmholtz[:p] | interpolation[:n:m] | sandwich[:n] | axpy[:n],\n\
         \tor a multi-kernel program simstep[:p] | axpychain[:n]\n\
         EMIT:   c | host | ir | dot | report | memory | all (default: report)\n\
         BOARD:  a catalog platform (see `cfdc boards`); default zcu106\n\n\
         Multi-kernel sources compile into ONE shared-memory accelerator system;\n\
         --kernel NAME selects a single kernel of the program instead.\n\
         `explore --boards all` sweeps the platform x clock x (k, m) portfolio and\n\
         reports the Pareto frontier (simulated time vs. resource fit) per board."
    );
    exit(2)
}

fn load_source(spec: &str) -> String {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or_default();
    let p1: Option<usize> = parts.next().and_then(|s| s.parse().ok());
    let p2: Option<usize> = parts.next().and_then(|s| s.parse().ok());
    match head {
        "helmholtz" => cfdlang::examples::inverse_helmholtz(p1.unwrap_or(11)),
        "interpolation" => cfdlang::examples::interpolation(p1.unwrap_or(8), p2.unwrap_or(12)),
        "sandwich" => cfdlang::examples::matrix_sandwich(p1.unwrap_or(8)),
        "axpy" => cfdlang::examples::axpy(p1.unwrap_or(8)),
        "simstep" => cfdlang::examples::simulation_step(p1.unwrap_or(11)),
        "axpychain" => cfdlang::examples::axpy_chain(p1.unwrap_or(8)),
        path => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read '{path}': {e}");
            exit(1)
        }),
    }
}

struct Parsed {
    source: String,
    opts: FlowOptions,
    /// Co-locate PLM groups across kernels of a program.
    cross_sharing: bool,
    /// Kernel count of the (possibly `--kernel`-reduced) source,
    /// parsed once in `parse_common`.
    kernel_count: usize,
    emit: String,
    out_dir: Option<String>,
    elements: usize,
    /// Whether --elements was given explicitly (commands pick their own
    /// defaults otherwise).
    elements_set: bool,
    seed: u64,
    k: Option<usize>,
    m: Option<usize>,
    grid: bool,
    jobs: usize,
    json: bool,
    /// Portfolio platforms from `--boards` (explore only).
    boards: Option<Vec<Platform>>,
}

impl Parsed {
    /// Whether the source is a multi-kernel program.
    fn is_program(&self) -> bool {
        self.kernel_count > 1
    }

    fn program_options(&self) -> ProgramOptions {
        let mut opts = ProgramOptions {
            flow: self.opts.clone(),
            cross_sharing: self.cross_sharing,
            system: None,
        };
        opts.flow.system = None;
        opts
    }
}

fn parse_common(args: &[String]) -> Parsed {
    if args.is_empty() {
        usage();
    }
    let mut source = load_source(&args[0]);
    let mut opts = FlowOptions::default();
    let mut cross_sharing = true;
    let mut kernel: Option<String> = None;
    let mut emit = "report".to_string();
    let mut out_dir = None;
    let mut elements = 50_000usize;
    let mut elements_set = false;
    let mut seed = 42u64;
    let mut k = None;
    let mut m = None;
    let mut grid = false;
    let mut jobs = 0usize;
    let mut json = false;
    let mut board: Option<String> = None;
    let mut boards: Option<Vec<Platform>> = None;
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--no-factorize" => opts.factorize = false,
            "--no-decouple" => opts.decoupled = false,
            "--no-sharing" => {
                opts.memory = MemoryOptions {
                    sharing: false,
                    ..Default::default()
                }
            }
            "--no-cross-sharing" => cross_sharing = false,
            "--kernel" => kernel = Some(value(&mut i)),
            "--emit" => emit = value(&mut i),
            "-o" => out_dir = Some(value(&mut i)),
            "--elements" => {
                elements = value(&mut i).parse().unwrap_or_else(|_| usage());
                elements_set = true;
            }
            "--seed" => seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--k" => k = value(&mut i).parse().ok(),
            "--m" => m = value(&mut i).parse().ok(),
            "--grid" => grid = true,
            "--board" => board = Some(value(&mut i)),
            "--boards" => {
                let spec = value(&mut i);
                boards = Some(if spec == "all" {
                    Platform::catalog()
                } else {
                    spec.split(',').map(lookup_platform).collect()
                });
            }
            "--jobs" => jobs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--json" => json = true,
            other => {
                eprintln!("unknown option '{other}'");
                usage();
            }
        }
        i += 1;
    }
    if let Some(name) = &board {
        let platform = lookup_platform(name);
        opts.hls.clock_mhz = platform.default_clock_mhz;
        opts.platform = platform;
    }
    if let (Some(k), Some(m)) = (k, m) {
        opts.system = Some(SystemConfig { k, m });
    }
    // Parse once: program detection, and the --kernel NAME reduction
    // of a program source to one of its kernels. (Parse errors are
    // deferred to the command's own compile for a uniform message.)
    let mut kernel_count = 1;
    if let Ok(set) = cfdlang::parse_set(&source) {
        kernel_count = set.kernels.len();
        if let Some(name) = &kernel {
            match set.find_kernel(name) {
                Some(k) => source = cfdlang::pretty(&k.program),
                None => {
                    eprintln!(
                        "no kernel '{name}' in program (kernels: {})",
                        set.kernel_names().join(", ")
                    );
                    exit(1)
                }
            }
            kernel_count = 1;
        }
    }
    Parsed {
        source,
        opts,
        cross_sharing,
        kernel_count,
        emit,
        out_dir,
        elements,
        elements_set,
        seed,
        k,
        m,
        grid,
        jobs,
        json,
        boards,
    }
}

/// Resolve a `--board`/`--boards` name against the platform catalog.
fn lookup_platform(name: &str) -> Platform {
    Platform::by_name(name).unwrap_or_else(|| {
        let ids: Vec<String> = Platform::catalog().into_iter().map(|p| p.id).collect();
        eprintln!("unknown board '{name}' (catalog: {})", ids.join(", "));
        exit(1)
    })
}

/// `cfdc boards`: the platform catalog.
fn cmd_boards() {
    println!("platform catalog (use with --board / --boards):");
    println!(
        "  id          board                       LUT        FF    DSP  BRAM36  host CPU                fabric clocks (MHz)"
    );
    for p in Platform::catalog() {
        let clocks: Vec<String> = p
            .clock_ladder_mhz
            .iter()
            .map(|c| {
                if (*c - p.default_clock_mhz).abs() < 1e-9 {
                    format!("[{c:.0}]")
                } else {
                    format!("{c:.0}")
                }
            })
            .collect();
        println!(
            "  {:<10}  {:<22}  {:>9}  {:>8}  {:>5}  {:>6}  {:<22}  {}",
            p.id,
            p.board.name,
            p.board.luts,
            p.board.ffs,
            p.board.dsps,
            p.board.brams,
            format!("{} @ {:.2} GHz", p.host.name, p.host.hz / 1e9),
            clocks.join(" "),
        );
    }
    println!("  (default clock bracketed; default board: zcu106)");
}

fn compile(p: &Parsed) -> cfd_core::Artifacts {
    Flow::compile(&p.source, &p.opts).unwrap_or_else(|e| {
        eprintln!("compilation failed: {e}");
        exit(1)
    })
}

fn compile_program(p: &Parsed) -> ProgramArtifacts {
    let mut opts = p.program_options();
    if let (Some(k), Some(m)) = (p.k, p.m) {
        // Uniform per-kernel replication from --k/--m.
        opts.system = Some(ProgramSystemConfig::uniform(k, m, p.kernel_count));
    }
    ProgramFlow::compile(&p.source, &opts).unwrap_or_else(|e| {
        eprintln!("compilation failed: {e}");
        exit(1)
    })
}

/// Per-kernel + aggregate resource tables of a compiled program.
fn program_report(art: &ProgramArtifacts) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "program: {} kernels, {} handoffs, cross-kernel PLM edges: {}\n",
        art.kernel_count(),
        art.cross.handoffs.len(),
        art.memory_plan.cross_edges,
    ));
    s.push_str("  kernel                  latency(cyc)      LUT      FF   DSP  PLM-BRAM(alone)\n");
    for (name, a) in art.names.iter().zip(&art.kernels) {
        s.push_str(&format!(
            "  {:<22} {:>13}  {:>7}  {:>6}  {:>4}  {:>15}\n",
            name,
            a.hls_report.latency_cycles,
            a.hls_report.luts,
            a.hls_report.ffs,
            a.hls_report.dsps,
            a.memory.brams,
        ));
    }
    s.push_str(&format!(
        "  shared PLM set: {} BRAMs ({} if concatenated) in {} units\n",
        art.memory.brams,
        art.per_kernel_plm_brams(),
        art.memory.units.len(),
    ));
    let routing = if art.options.cross_sharing {
        "in-fabric"
    } else {
        "host-mediated copy"
    };
    for h in &art.cross.handoffs {
        s.push_str(&format!(
            "  handoff: {} --{}--> {} ({} words, {routing})\n",
            art.names[h.from], h.name, art.names[h.to], h.words
        ));
    }
    match &art.system {
        Some(sys) => {
            let ks: Vec<String> = sys.config.ks.iter().map(|k| k.to_string()).collect();
            s.push_str(&format!(
                "aggregate system: k=[{}] m={} | {} LUT {} FF {} DSP {} BRAM\n",
                ks.join(","),
                sys.config.m,
                sys.luts,
                sys.ffs,
                sys.dsps,
                sys.brams
            ));
            let (l, f, d, b) = sys.slack();
            s.push_str(&format!(
                "slack vs {}: {} LUT {} FF {} DSP {} BRAM\n",
                sys.board().name,
                l,
                f,
                d,
                b
            ));
        }
        None => s.push_str("aggregate system: no feasible configuration\n"),
    }
    s
}

fn cmd_compile(args: &[String]) {
    let p = parse_common(args);
    if p.is_program() {
        return cmd_compile_program(&p);
    }
    let art = compile(&p);
    let mut sections: Vec<(&str, String)> = Vec::new();
    let want = |w: &str| p.emit == w || p.emit == "all";
    if want("ir") {
        sections.push(("kernel.ir", art.module.to_string()));
    }
    if want("c") {
        sections.push(("kernel.c", art.c_source.clone()));
    }
    if want("host") {
        sections.push(("host.c", art.host_source.clone()));
    }
    if want("dot") {
        sections.push(("compat.dot", art.compat.to_dot()));
    }
    if want("memory") {
        let mut s = String::new();
        for u in &art.memory.units {
            s.push_str(&format!(
                "{}: {} words, {} BRAM36, {}R{}W, members {:?}\n",
                u.name, u.words, u.brams, u.read_ports, u.write_ports, u.members
            ));
        }
        s.push_str(&format!("total {} BRAMs\n", art.memory.brams));
        sections.push(("memory.txt", s));
    }
    if want("report") {
        let mut s = art.hls_report.to_string();
        if let Some(sys) = &art.system {
            s.push_str(&format!(
                "\nsystem: k={} m={} | {} LUT {} FF {} DSP {} BRAM\n",
                sys.config.k, sys.config.m, sys.luts, sys.ffs, sys.dsps, sys.brams
            ));
        }
        sections.push(("report.txt", s));
    }
    if sections.is_empty() {
        eprintln!("nothing to emit for '--emit {}'", p.emit);
        exit(2);
    }
    match &p.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create '{dir}': {e}");
                exit(1)
            });
            for (name, content) in &sections {
                let path = format!("{dir}/{name}");
                std::fs::write(&path, content).unwrap_or_else(|e| {
                    eprintln!("cannot write '{path}': {e}");
                    exit(1)
                });
                println!("wrote {path}");
            }
        }
        None => {
            for (name, content) in &sections {
                println!("=== {name} ===\n{content}");
            }
        }
    }
}

fn cmd_compile_program(p: &Parsed) {
    let art = compile_program(p);
    let mut sections: Vec<(String, String)> = Vec::new();
    let want = |w: &str| p.emit == w || p.emit == "all";
    if want("ir") {
        for (name, a) in art.names.iter().zip(&art.kernels) {
            sections.push((format!("{name}.ir"), a.module.to_string()));
        }
    }
    if want("c") {
        // Program-unique symbols (`<stage>_body`) so the emitted
        // sources link into one system.
        for (i, name) in art.names.iter().enumerate() {
            sections.push((format!("{name}.c"), art.stage_c_source(i)));
        }
    }
    if want("host") {
        sections.push(("host.c".to_string(), art.host_source.clone()));
    }
    if want("dot") {
        for (name, a) in art.names.iter().zip(&art.kernels) {
            sections.push((format!("{name}.compat.dot"), a.compat.to_dot()));
        }
    }
    if want("memory") {
        let mut s = String::new();
        for u in &art.memory.units {
            s.push_str(&format!(
                "{}: {} words, {} BRAM36, {}R{}W, members {:?}\n",
                u.name, u.words, u.brams, u.read_ports, u.write_ports, u.members
            ));
        }
        s.push_str(&format!(
            "total {} BRAMs ({} cross-kernel units)\n",
            art.memory.brams,
            art.memory_plan.cross_kernel_units(&art.memory)
        ));
        sections.push(("memory.txt".to_string(), s));
    }
    if want("report") {
        sections.push(("report.txt".to_string(), program_report(&art)));
    }
    if sections.is_empty() {
        eprintln!("nothing to emit for '--emit {}'", p.emit);
        exit(2);
    }
    match &p.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create '{dir}': {e}");
                exit(1)
            });
            for (name, content) in &sections {
                let path = format!("{dir}/{name}");
                std::fs::write(&path, content).unwrap_or_else(|e| {
                    eprintln!("cannot write '{path}': {e}");
                    exit(1)
                });
                println!("wrote {path}");
            }
        }
        None => {
            for (name, content) in &sections {
                println!("=== {name} ===\n{content}");
            }
        }
    }
}

fn cmd_simulate(args: &[String]) {
    let p = parse_common(args);
    if p.is_program() {
        let art = compile_program(&p);
        let r = art
            .simulate(&SimConfig {
                elements: p.elements,
                ..Default::default()
            })
            .unwrap_or_else(|e| {
                eprintln!("simulation failed: {e}");
                exit(1)
            });
        let ks: Vec<String> = r.ks.iter().map(|k| k.to_string()).collect();
        println!(
            "program k=[{}] m={} | {} elements in {} rounds",
            ks.join(","),
            r.m,
            r.elements,
            r.rounds
        );
        for (name, exec) in art.names.iter().zip(&r.stage_exec_s) {
            println!("  stage {name}: exec {exec:.4} s");
        }
        println!(
            "exec {:.4} s | transfers {:.4} s | total {:.4} s ({:.2} ms/element)",
            r.exec_s,
            r.transfer_s,
            r.total_s,
            r.total_per_element_s() * 1e3
        );
        return;
    }
    let art = compile(&p);
    let r = art
        .simulate(&SimConfig {
            elements: p.elements,
            ..Default::default()
        })
        .unwrap_or_else(|e| {
            eprintln!("simulation failed: {e}");
            exit(1)
        });
    println!(
        "k={} m={} | {} elements in {} rounds",
        r.k, r.m, r.elements, r.rounds
    );
    println!(
        "exec {:.4} s | transfers {:.4} s | total {:.4} s ({:.2} ms/element)",
        r.exec_s,
        r.transfer_s,
        r.total_s,
        r.total_per_element_s() * 1e3
    );
    let (sw_ref, sw_hls) = art.sw_times(p.elements).unwrap();
    println!(
        "ARM A53: reference {:.4} s, HLS-style code {:.4} s -> HW speedup {:.2}x",
        sw_ref.total_s,
        sw_hls.total_s,
        sw_ref.total_s / r.total_s
    );
}

fn cmd_verify(args: &[String]) {
    let mut p = parse_common(args);
    if !p.elements_set {
        p.elements = 8; // verification default: a sample, not the full run
    }
    if p.is_program() {
        let art = compile_program(&p);
        let v = art.verify(p.elements, p.seed).unwrap_or_else(|e| {
            eprintln!("verification failed: {e}");
            exit(1)
        });
        println!(
            "verified {} chained elements ({} kernels): bitexact={}, max_rel_diff={:.3e}",
            v.elements,
            art.kernel_count(),
            v.bitexact,
            v.max_rel_diff
        );
        if !v.bitexact {
            exit(1);
        }
        return;
    }
    let art = compile(&p);
    let v = art.verify(p.elements, p.seed).unwrap_or_else(|e| {
        eprintln!("verification failed: {e}");
        exit(1)
    });
    println!(
        "verified {} elements: bitexact={}, max_rel_diff={:.3e}",
        v.elements, v.bitexact, v.max_rel_diff
    );
    if !v.bitexact {
        exit(1);
    }
}

fn cmd_explore(args: &[String]) {
    let p = parse_common(args);
    if p.is_program() {
        return cmd_explore_program(&p);
    }
    let engine = DseEngine::prepare(&p.source, &p.opts).unwrap_or_else(|e| {
        eprintln!("compilation failed: {e}");
        exit(1)
    });
    if let Some(platforms) = &p.boards {
        let elements = if p.elements_set { p.elements } else { 10_000 };
        let report = engine.run_portfolio(platforms, &DseGrid::default(), p.jobs, elements);
        return print_portfolio(&report, p.json);
    }
    if p.grid {
        // Sweep default: small enough to keep 32 simulations quick.
        let elements = if p.elements_set { p.elements } else { 10_000 };
        let report = engine.run(&DseGrid::default(), p.jobs, elements);
        if p.json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_table());
            if let Some(best) = report.best() {
                println!(
                    "best: {} ({:.0} elements/s)",
                    best.point.label(),
                    best.throughput_eps
                );
            }
        }
        return;
    }
    // Legacy listing: one backend pass, then Eq. (3) over all (k, m).
    let be = engine.pipeline().backend(engine.scheduled(), &p.opts);
    explore_listing(&p, &be);
}

/// Render a portfolio sweep (table or JSON) with its Pareto frontier.
fn print_portfolio(report: &cfd_core::dse::PortfolioReport, json: bool) {
    if json {
        println!("{}", report.to_json());
        return;
    }
    print!("{}", report.render_table());
    let frontier = report.pareto_frontier();
    println!("pareto frontier ({} points):", frontier.len());
    for o in frontier {
        println!(
            "  {} @ {:.0} MHz: k={} m={} -> {:.4} s ({:.0} el/s) at {:.1}% fit",
            o.platform,
            o.clock_mhz,
            o.outcome.point.k,
            o.outcome.point.m,
            o.outcome.total_s,
            o.outcome.throughput_eps,
            o.utilization * 100.0
        );
    }
}

/// Joint exploration of a multi-kernel program.
fn cmd_explore_program(p: &Parsed) {
    if let Some(platforms) = &p.boards {
        let engine =
            ProgramDseEngine::prepare(&p.source, &p.program_options()).unwrap_or_else(|e| {
                eprintln!("compilation failed: {e}");
                exit(1)
            });
        let elements = if p.elements_set { p.elements } else { 10_000 };
        let report = engine.run_portfolio(platforms, &DseGrid::default(), p.jobs, elements);
        return print_portfolio(&report, p.json);
    }
    if p.grid {
        let engine =
            ProgramDseEngine::prepare(&p.source, &p.program_options()).unwrap_or_else(|e| {
                eprintln!("compilation failed: {e}");
                exit(1)
            });
        let elements = if p.elements_set { p.elements } else { 10_000 };
        let report = engine.run(&DseGrid::default(), p.jobs, elements);
        if p.json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_table());
            if let Some(best) = report.best() {
                println!(
                    "best: {} ({:.0} elements/s, program {})",
                    best.point.label(),
                    best.throughput_eps,
                    best.kernel
                );
            }
        }
        return;
    }
    // Listing mode: compile the program once, enumerate uniform configs.
    let art = ProgramFlow::compile(&p.source, &p.program_options()).unwrap_or_else(|e| {
        eprintln!("compilation failed: {e}");
        exit(1)
    });
    print!("{}", program_report(&art));
    let stages: Vec<(String, hls::HlsReport)> = art
        .names
        .iter()
        .zip(&art.kernels)
        .map(|(n, a)| (n.clone(), a.hls_report.clone()))
        .collect();
    println!(
        "feasible uniform configurations on {}:",
        p.opts.platform.board.name
    );
    println!("   k    m     LUT   BRAM");
    for d in sysgen::enumerate_program_designs(&p.opts.platform, &stages, &art.memory) {
        println!(
            "  {:>2}  {:>3}  {:>6}  {:>5}",
            d.config.ks[0], d.config.m, d.luts, d.brams
        );
    }
}

/// The single-kernel feasibility listing.
fn explore_listing(p: &Parsed, be: &cfd_core::pipeline::Backend) {
    let platform = &p.opts.platform;
    println!(
        "kernel: {} LUT {} FF {} DSP | PLM {} BRAM",
        be.hls_report.luts, be.hls_report.ffs, be.hls_report.dsps, be.memory.brams
    );
    println!("feasible configurations on {}:", platform.board.name);
    println!("   k    m  batch     LUT   BRAM   slack(BRAM)");
    for cfg in sysgen::enumerate_configs(platform, &be.hls_report, &be.memory) {
        let host = sysgen::HostProgram::from_kernel(&be.kernel, cfg);
        if let Some(d) =
            sysgen::SystemDesign::build(platform, &be.hls_report, &be.memory, cfg, host)
        {
            let (_, _, _, sb) = d.slack();
            println!(
                "  {:>2}  {:>3}  {:>4}   {:>6}  {:>5}   {:>6}",
                cfg.k,
                cfg.m,
                cfg.batch(),
                d.luts,
                d.brams,
                sb
            );
        }
    }
}
