//! `cfdc` — command-line driver for the CFDlang-to-FPGA flow.
//!
//! ```text
//! cfdc compile  <file.cfd> [--no-factorize] [--no-sharing] [--no-decouple]
//!               [--emit c|host|ir|dot|report|memory|all] [-o DIR]
//! cfdc simulate <file.cfd> [--elements N] [--k K] [--m M]
//! cfdc verify   <file.cfd> [--elements N] [--seed S]
//! cfdc explore  <file.cfd> [--grid] [--jobs N] [--json] [--elements N]
//! ```
//!
//! `explore` lists feasible replications; with `--grid` it runs the full
//! parallel design-space sweep (k × batch × sharing × decoupling) on the
//! staged pipeline — the frontend and middle end compile once, the
//! per-point backend/system stages fan out over `--jobs` workers.
//!
//! `<file.cfd>` may be a path or one of the built-in kernels:
//! `helmholtz[:p]`, `interpolation[:n:m]`, `sandwich[:n]`, `axpy[:n]`.

use cfd_core::dse::{DseEngine, DseGrid};
use cfd_core::{Flow, FlowOptions};
use mnemosyne::MemoryOptions;
use std::process::exit;
use sysgen::SystemConfig;
use zynq::SimConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "compile" => cmd_compile(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "explore" => cmd_explore(&args[1..]),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command '{other}'");
            usage();
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "cfdc — CFDlang-to-FPGA flow\n\n\
         USAGE:\n\
         \tcfdc compile  <kernel> [--no-factorize] [--no-sharing] [--no-decouple] [--emit WHAT] [-o DIR]\n\
         \tcfdc simulate <kernel> [--elements N] [--k K] [--m M]\n\
         \tcfdc verify   <kernel> [--elements N] [--seed S]\n\
         \tcfdc explore  <kernel> [--grid] [--jobs N] [--json] [--elements N]\n\n\
         KERNEL: a .cfd file path or helmholtz[:p] | interpolation[:n:m] | sandwich[:n] | axpy[:n]\n\
         EMIT:   c | host | ir | dot | report | memory | all (default: report)"
    );
    exit(2)
}

fn load_source(spec: &str) -> String {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or_default();
    let p1: Option<usize> = parts.next().and_then(|s| s.parse().ok());
    let p2: Option<usize> = parts.next().and_then(|s| s.parse().ok());
    match head {
        "helmholtz" => cfdlang::examples::inverse_helmholtz(p1.unwrap_or(11)),
        "interpolation" => cfdlang::examples::interpolation(p1.unwrap_or(8), p2.unwrap_or(12)),
        "sandwich" => cfdlang::examples::matrix_sandwich(p1.unwrap_or(8)),
        "axpy" => cfdlang::examples::axpy(p1.unwrap_or(8)),
        path => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read '{path}': {e}");
            exit(1)
        }),
    }
}

struct Parsed {
    source: String,
    opts: FlowOptions,
    emit: String,
    out_dir: Option<String>,
    elements: usize,
    /// Whether --elements was given explicitly (commands pick their own
    /// defaults otherwise).
    elements_set: bool,
    seed: u64,
    #[allow(dead_code)]
    k: Option<usize>,
    #[allow(dead_code)]
    m: Option<usize>,
    grid: bool,
    jobs: usize,
    json: bool,
}

fn parse_common(args: &[String]) -> Parsed {
    if args.is_empty() {
        usage();
    }
    let source = load_source(&args[0]);
    let mut opts = FlowOptions::default();
    let mut emit = "report".to_string();
    let mut out_dir = None;
    let mut elements = 50_000usize;
    let mut elements_set = false;
    let mut seed = 42u64;
    let mut k = None;
    let mut m = None;
    let mut grid = false;
    let mut jobs = 0usize;
    let mut json = false;
    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--no-factorize" => opts.factorize = false,
            "--no-decouple" => opts.decoupled = false,
            "--no-sharing" => {
                opts.memory = MemoryOptions {
                    sharing: false,
                    ..Default::default()
                }
            }
            "--emit" => emit = value(&mut i),
            "-o" => out_dir = Some(value(&mut i)),
            "--elements" => {
                elements = value(&mut i).parse().unwrap_or_else(|_| usage());
                elements_set = true;
            }
            "--seed" => seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--k" => k = value(&mut i).parse().ok(),
            "--m" => m = value(&mut i).parse().ok(),
            "--grid" => grid = true,
            "--jobs" => jobs = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--json" => json = true,
            other => {
                eprintln!("unknown option '{other}'");
                usage();
            }
        }
        i += 1;
    }
    if let (Some(k), Some(m)) = (k, m) {
        opts.system = Some(SystemConfig { k, m });
    }
    Parsed {
        source,
        opts,
        emit,
        out_dir,
        elements,
        elements_set,
        seed,
        k,
        m,
        grid,
        jobs,
        json,
    }
}

fn compile(p: &Parsed) -> cfd_core::Artifacts {
    Flow::compile(&p.source, &p.opts).unwrap_or_else(|e| {
        eprintln!("compilation failed: {e}");
        exit(1)
    })
}

fn cmd_compile(args: &[String]) {
    let p = parse_common(args);
    let art = compile(&p);
    let mut sections: Vec<(&str, String)> = Vec::new();
    let want = |w: &str| p.emit == w || p.emit == "all";
    if want("ir") {
        sections.push(("kernel.ir", art.module.to_string()));
    }
    if want("c") {
        sections.push(("kernel.c", art.c_source.clone()));
    }
    if want("host") {
        sections.push(("host.c", art.host_source.clone()));
    }
    if want("dot") {
        sections.push(("compat.dot", art.compat.to_dot()));
    }
    if want("memory") {
        let mut s = String::new();
        for u in &art.memory.units {
            s.push_str(&format!(
                "{}: {} words, {} BRAM36, {}R{}W, members {:?}\n",
                u.name, u.words, u.brams, u.read_ports, u.write_ports, u.members
            ));
        }
        s.push_str(&format!("total {} BRAMs\n", art.memory.brams));
        sections.push(("memory.txt", s));
    }
    if want("report") {
        let mut s = art.hls_report.to_string();
        if let Some(sys) = &art.system {
            s.push_str(&format!(
                "\nsystem: k={} m={} | {} LUT {} FF {} DSP {} BRAM\n",
                sys.config.k, sys.config.m, sys.luts, sys.ffs, sys.dsps, sys.brams
            ));
        }
        sections.push(("report.txt", s));
    }
    if sections.is_empty() {
        eprintln!("nothing to emit for '--emit {}'", p.emit);
        exit(2);
    }
    match &p.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create '{dir}': {e}");
                exit(1)
            });
            for (name, content) in &sections {
                let path = format!("{dir}/{name}");
                std::fs::write(&path, content).unwrap_or_else(|e| {
                    eprintln!("cannot write '{path}': {e}");
                    exit(1)
                });
                println!("wrote {path}");
            }
        }
        None => {
            for (name, content) in &sections {
                println!("=== {name} ===\n{content}");
            }
        }
    }
}

fn cmd_simulate(args: &[String]) {
    let p = parse_common(args);
    let art = compile(&p);
    let r = art
        .simulate(&SimConfig {
            elements: p.elements,
            ..Default::default()
        })
        .unwrap_or_else(|e| {
            eprintln!("simulation failed: {e}");
            exit(1)
        });
    println!(
        "k={} m={} | {} elements in {} rounds",
        r.k, r.m, r.elements, r.rounds
    );
    println!(
        "exec {:.4} s | transfers {:.4} s | total {:.4} s ({:.2} ms/element)",
        r.exec_s,
        r.transfer_s,
        r.total_s,
        r.total_per_element_s() * 1e3
    );
    let (sw_ref, sw_hls) = art.sw_times(p.elements).unwrap();
    println!(
        "ARM A53: reference {:.4} s, HLS-style code {:.4} s -> HW speedup {:.2}x",
        sw_ref.total_s,
        sw_hls.total_s,
        sw_ref.total_s / r.total_s
    );
}

fn cmd_verify(args: &[String]) {
    let mut p = parse_common(args);
    if !p.elements_set {
        p.elements = 8; // verification default: a sample, not the full run
    }
    let art = compile(&p);
    let v = art.verify(p.elements, p.seed).unwrap_or_else(|e| {
        eprintln!("verification failed: {e}");
        exit(1)
    });
    println!(
        "verified {} elements: bitexact={}, max_rel_diff={:.3e}",
        v.elements, v.bitexact, v.max_rel_diff
    );
    if !v.bitexact {
        exit(1);
    }
}

fn cmd_explore(args: &[String]) {
    let p = parse_common(args);
    let engine = DseEngine::prepare(&p.source, &p.opts).unwrap_or_else(|e| {
        eprintln!("compilation failed: {e}");
        exit(1)
    });
    if p.grid {
        // Sweep default: small enough to keep 32 simulations quick.
        let elements = if p.elements_set { p.elements } else { 10_000 };
        let report = engine.run(&DseGrid::default(), p.jobs, elements);
        if p.json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_table());
            if let Some(best) = report.best() {
                println!(
                    "best: {} ({:.0} elements/s)",
                    best.point.label(),
                    best.throughput_eps
                );
            }
        }
        return;
    }
    // Legacy listing: one backend pass, then Eq. (3) over all (k, m).
    let be = engine.pipeline().backend(engine.scheduled(), &p.opts);
    let board = &p.opts.board;
    println!(
        "kernel: {} LUT {} FF {} DSP | PLM {} BRAM",
        be.hls_report.luts, be.hls_report.ffs, be.hls_report.dsps, be.memory.brams
    );
    println!("feasible configurations on {}:", board.name);
    println!("   k    m  batch     LUT   BRAM   slack(BRAM)");
    for cfg in sysgen::enumerate_configs(board, &be.hls_report, &be.memory) {
        let host = sysgen::HostProgram::from_kernel(&be.kernel, cfg);
        if let Some(d) = sysgen::SystemDesign::build(board, &be.hls_report, &be.memory, cfg, host) {
            let (_, _, _, sb) = d.slack();
            println!(
                "  {:>2}  {:>3}  {:>4}   {:>6}  {:>5}   {:>6}",
                cfg.k,
                cfg.m,
                cfg.batch(),
                d.luts,
                d.brams,
                sb
            );
        }
    }
}
