//! `cfdc` — command-line driver for the CFDlang-to-FPGA flow.
//!
//! ```text
//! cfdc boards
//! cfdc compile  <file.cfd> [--board NAME] [--no-factorize] [--no-sharing]
//!               [--no-decouple] [--no-cross-sharing] [--kernel NAME]
//!               [--emit c|host|ir|dot|report|memory|all] [-o DIR]
//!               [--jobs N] [--cache-dir PATH] [--no-cache] [--json]
//! cfdc cache    stats|clear --cache-dir PATH
//! cfdc simulate <file.cfd> [--board NAME] [--elements N] [--k K] [--m M] [--kernel NAME]
//! cfdc verify   <file.cfd> [--elements N] [--seed S] [--kernel NAME]
//! cfdc explore  <file.cfd> [--board NAME | --boards all|A,B,..] [--grid]
//!               [--jobs N] [--json] [--elements N]
//! cfdc serve    <file.cfd> [--board NAME] [--requests N] [--arrival closed|poisson]
//!               [--rate R] [--batch auto|off|K] [--no-overlap] [--seed S] [--json]
//!               [--online] [--slo SECS] [--shed DEPTH] [--priority TIERS]
//!               [--fleet all|A,B,..] [--route rr|jsq|predictive]
//! ```
//!
//! Every command targets one platform from the catalog (`cfdc boards`
//! lists it; default ZCU106). `explore` lists feasible replications;
//! with `--grid` it runs the full parallel design-space sweep
//! (k × batch × sharing × decoupling) on the staged pipeline — the
//! frontend and middle end compile once, the per-point backend/system
//! stages fan out over `--jobs` workers. With `--boards all` (or a
//! comma-separated list) it sweeps the **platform × clock × grid**
//! portfolio and reports the Pareto frontier of simulated time vs.
//! resource fit across boards, plus the service frontier (requests/sec
//! vs. p99 latency vs. fit).
//!
//! `serve` runs the batched multi-request runtime: a queue of
//! `--requests` independent invocations of the compiled system is
//! coalesced into hardware rounds (`--batch auto` fills the design's
//! `m`, `--batch K` caps the fill, `--batch off` is the sequential
//! reference), time-multiplexed with double-buffered DMA, and reported
//! as requests/sec, p50/p99 latency and DMA/compute overlap. With
//! `--fleet` the same stream is sharded across a whole board set by a
//! deterministic dispatcher (`--route rr|jsq|predictive`) and reported
//! as fleet-aggregate req/s plus per-board utilization.
//!
//! **Multi-kernel programs** (sources with `kernel name { ... }` blocks)
//! compile as a whole into one shared-memory accelerator system —
//! `compile` prints per-kernel *and* aggregate resource tables,
//! `simulate`/`verify`/`serve` run the chained execution, `explore
//! --grid` sweeps joint design points. `--kernel NAME` instead selects
//! one kernel of the program and compiles it alone.
//!
//! `<file.cfd>` may be a path or one of the built-in kernels:
//! `helmholtz[:p]`, `interpolation[:n:m]`, `sandwich[:n]`, `axpy[:n]`,
//! or the built-in programs `simstep[:p]`, `axpychain[:n]`.
//!
//! Malformed arguments never panic: every flag value routes through the
//! structured [`CliError`] path (exit code 2 with a one-line
//! diagnosis), mirroring the structured `FlowError::DoesNotFit`
//! introduced for small-board compiles.

use cfd_core::dse::{DseEngine, DseGrid, ProgramDseEngine};
use cfd_core::program::{ProgramArtifacts, ProgramFlow, ProgramOptions};
use cfd_core::{
    Arrival, BatchPolicy, CompileCache, FaultPlan, FleetBoard, FleetOptions, Flow, FlowOptions,
    OnlinePolicy, RecoveryPolicy, RoutePolicy, RuntimeOptions,
};
use mnemosyne::MemoryOptions;
use std::process::exit;
use std::sync::Arc;
use sysgen::{Platform, ProgramSystemConfig, SystemConfig};
use zynq::SimConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "compile" => cmd_compile(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "explore" => cmd_explore(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "boards" => cmd_boards(),
        "cache" => cmd_cache(&args[1..]),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command '{other}'");
            usage();
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "cfdc — CFDlang-to-FPGA flow\n\n\
         USAGE:\n\
         \tcfdc boards\n\
         \tcfdc compile  <kernel> [--board NAME] [--no-factorize] [--no-sharing] [--no-decouple]\n\
         \t              [--no-cross-sharing] [--kernel NAME] [--emit WHAT] [-o DIR]\n\
         \t              [--jobs N] [--cache-dir PATH] [--no-cache] [--json]\n\
         \tcfdc cache    stats|clear --cache-dir PATH\n\
         \tcfdc simulate <kernel> [--board NAME] [--elements N] [--k K] [--m M] [--kernel NAME]\n\
         \tcfdc verify   <kernel> [--elements N] [--seed S] [--kernel NAME]\n\
         \tcfdc explore  <kernel> [--board NAME | --boards all|A,B,..] [--grid] [--jobs N]\n\
         \t              [--json] [--elements N]\n\
         \tcfdc serve    <kernel> [--board NAME] [--requests N] [--arrival closed|poisson]\n\
         \t              [--rate R] [--batch auto|off|K] [--no-overlap] [--seed S] [--json]\n\
         \t              [--faults SEED:SPEC] [--deadline SECS] [--retries N] [--backoff SECS]\n\
         \t              [--online] [--slo SECS] [--shed DEPTH] [--priority TIERS]\n\
         \t              [--fleet all|A,B,..] [--route rr|jsq|predictive]\n\n\
         KERNEL: a .cfd file path, a kernel helmholtz[:p] | interpolation[:n:m] | sandwich[:n] | axpy[:n],\n\
         \tor a multi-kernel program simstep[:p] | axpychain[:n]\n\
         EMIT:   c | host | ir | dot | report | memory | all (default: report)\n\
         BOARD:  a catalog platform (see `cfdc boards`); default zcu106\n\n\
         Multi-kernel sources compile into ONE shared-memory accelerator system;\n\
         --kernel NAME selects a single kernel of the program instead.\n\
         `explore --boards all` sweeps the platform x clock x (k, m) portfolio and\n\
         reports the Pareto frontier (simulated time vs. resource fit) per board.\n\
         `serve` batches a queue of independent requests onto one compiled system\n\
         and reports requests/sec, p50/p99 latency and DMA/compute overlap.\n\
         --faults arms a deterministic fault plan (`7:0.1` = seed 7, 10% transient\n\
         round errors; or `7:transient=0.1,stall=0.05,corrupt=0.01,fail=2e-3,recover=4e-3`);\n\
         --retries/--backoff/--deadline set the recovery policy, and the report\n\
         grows completed/retried/shed/failed counts plus goodput vs offered load.\n\
         --online serves through the event-loop reactor (bit-identical to the\n\
         default scheduler until a policy is armed); --slo SECS closes batches\n\
         early when the oldest queued request's p99 budget is at risk and sheds\n\
         structurally hopeless requests, --shed DEPTH bounds the admission queue\n\
         (arrivals beyond it are load-shed), --priority TIERS serves tier 0\n\
         first with preemption at round boundaries (requests cycle tiers by id).\n\
         `serve --fleet` shards ONE request stream across a board set (compiled\n\
         once per platform; boards that cannot fit the program are skipped) and\n\
         reports fleet-aggregate req/s, goodput, p99 and per-board utilization;\n\
         --route picks the dispatcher (rr round-robin | jsq join-shortest-queue |\n\
         predictive via each board's cost model), and --faults arms board 0 only\n\
         so a board outage drains and requeues onto the survivors.\n\
         --cache-dir PATH persists the scheduling-stage products under a content\n\
         hash: a re-compile of unchanged source reports cache hits and emits\n\
         bit-identical output (`cfdc cache stats|clear` inspects the store)."
    );
    exit(2)
}

/// A structured CLI error: every malformed argument routes through this
/// (printed as one line, exit code 2) instead of panicking or being
/// silently ignored.
#[derive(Debug, Clone, PartialEq)]
enum CliError {
    /// No kernel/file argument at all — fall back to the usage text.
    MissingKernel,
    MissingValue {
        flag: String,
    },
    InvalidValue {
        flag: String,
        value: String,
        expected: &'static str,
    },
    UnknownOption(String),
    UnknownBoard {
        name: String,
        catalog: Vec<String>,
    },
    UnknownKernel {
        name: String,
        kernels: Vec<String>,
    },
    CannotRead {
        path: String,
        error: String,
    },
    /// The `--cache-dir` location cannot be created, probed for
    /// writability, or enumerated.
    CacheDir {
        path: String,
        error: String,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingKernel => write!(f, "missing kernel argument"),
            CliError::MissingValue { flag } => write!(f, "option '{flag}' needs a value"),
            CliError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "invalid value '{value}' for {flag}: expected {expected}"),
            CliError::UnknownOption(o) => write!(f, "unknown option '{o}'"),
            CliError::UnknownBoard { name, catalog } => write!(
                f,
                "unknown board '{name}' (catalog: {})",
                catalog.join(", ")
            ),
            CliError::UnknownKernel { name, kernels } => write!(
                f,
                "no kernel '{name}' in program (kernels: {})",
                kernels.join(", ")
            ),
            CliError::CannotRead { path, error } => write!(f, "cannot read '{path}': {error}"),
            CliError::CacheDir { path, error } => {
                write!(f, "cannot use cache directory '{path}': {error}")
            }
        }
    }
}

/// Parse a flag value, naming the flag and the expectation on failure.
fn parse_value<T: std::str::FromStr>(
    flag: &str,
    value: String,
    expected: &'static str,
) -> Result<T, CliError> {
    value.parse().map_err(|_| CliError::InvalidValue {
        flag: flag.to_string(),
        value,
        expected,
    })
}

/// Consume the value following `args[*i]`.
fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, CliError> {
    *i += 1;
    args.get(*i).cloned().ok_or_else(|| CliError::MissingValue {
        flag: flag.to_string(),
    })
}

fn load_source(spec: &str) -> Result<String, CliError> {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or_default();
    let p1 = parts.next();
    let p2 = parts.next();
    let num = |v: Option<&str>, default: usize| -> Result<usize, CliError> {
        match v {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| CliError::InvalidValue {
                flag: format!("kernel parameter of '{head}'"),
                value: s.to_string(),
                expected: "a positive integer",
            }),
        }
    };
    Ok(match head {
        "helmholtz" => cfdlang::examples::inverse_helmholtz(num(p1, 11)?),
        "interpolation" => cfdlang::examples::interpolation(num(p1, 8)?, num(p2, 12)?),
        "sandwich" => cfdlang::examples::matrix_sandwich(num(p1, 8)?),
        "axpy" => cfdlang::examples::axpy(num(p1, 8)?),
        "simstep" => cfdlang::examples::simulation_step(num(p1, 11)?),
        "axpychain" => cfdlang::examples::axpy_chain(num(p1, 8)?),
        _ => std::fs::read_to_string(spec).map_err(|e| CliError::CannotRead {
            path: spec.to_string(),
            error: e.to_string(),
        })?,
    })
}

#[derive(Debug)]
struct Parsed {
    source: String,
    opts: FlowOptions,
    /// Co-locate PLM groups across kernels of a program.
    cross_sharing: bool,
    /// Kernel count of the (possibly `--kernel`-reduced) source,
    /// parsed once in `parse_common`.
    kernel_count: usize,
    emit: String,
    out_dir: Option<String>,
    elements: usize,
    /// Whether --elements was given explicitly (commands pick their own
    /// defaults otherwise).
    elements_set: bool,
    seed: u64,
    k: Option<usize>,
    m: Option<usize>,
    grid: bool,
    jobs: usize,
    json: bool,
    /// On-disk compile-cache directory (`--cache-dir`); compiles run
    /// uncached when absent or when `--no-cache` is given.
    cache_dir: Option<String>,
    no_cache: bool,
    /// Portfolio platforms from `--boards` (explore only).
    boards: Option<Vec<Platform>>,
    /// Serving: request count, arrival process, batch policy, DMA
    /// double-buffering (serve only).
    requests: usize,
    arrival: Arrival,
    batch: BatchPolicy,
    overlap: bool,
    /// Deterministic fault plan from `--faults` (unarmed by default).
    faults: FaultPlan,
    /// Retry/backoff/deadline policy from `--retries`, `--backoff`,
    /// `--deadline`.
    recovery: RecoveryPolicy,
    /// Fleet platforms from `--fleet` (serve only): shard the request
    /// stream across this board set instead of serving one board.
    fleet: Option<Vec<Platform>>,
    /// Dispatcher routing policy from `--route` (fleet serving).
    route: RoutePolicy,
    /// Online serving policy from `--online`, `--slo`, `--shed`,
    /// `--priority` (serve only).
    online: OnlinePolicy,
}

impl Parsed {
    /// Whether the source is a multi-kernel program.
    fn is_program(&self) -> bool {
        self.kernel_count > 1
    }

    fn program_options(&self) -> ProgramOptions {
        let mut opts = ProgramOptions {
            flow: self.opts.clone(),
            cross_sharing: self.cross_sharing,
            system: None,
        };
        opts.flow.system = None;
        opts
    }

    /// Build the compile cache requested by `--cache-dir` (none when
    /// absent or disabled with `--no-cache`). An unusable directory is
    /// the structured [`CliError::CacheDir`] — reported once, up front.
    fn cache(&self) -> Result<Option<Arc<CompileCache>>, CliError> {
        match &self.cache_dir {
            Some(dir) if !self.no_cache => CompileCache::with_dir(dir)
                .map(|c| Some(Arc::new(c)))
                .map_err(|e| CliError::CacheDir {
                    path: dir.clone(),
                    error: e.to_string(),
                }),
            _ => Ok(None),
        }
    }

    fn runtime_options(&self) -> RuntimeOptions {
        RuntimeOptions {
            requests: self.requests,
            arrival: self.arrival,
            batch: self.batch,
            overlap_dma: self.overlap,
            seed: self.seed,
            execute: false,
            sim: SimConfig::default(),
            faults: self.faults.clone(),
            recovery: self.recovery,
            online: self.online.clone(),
        }
    }
}

fn parse_common(args: &[String]) -> Result<Parsed, CliError> {
    if args.is_empty() {
        return Err(CliError::MissingKernel);
    }
    let mut source = load_source(&args[0])?;
    let mut opts = FlowOptions::default();
    let mut cross_sharing = true;
    let mut kernel: Option<String> = None;
    let mut emit = "report".to_string();
    let mut out_dir = None;
    let mut elements = 50_000usize;
    let mut elements_set = false;
    let mut seed = 42u64;
    let mut k = None;
    let mut m = None;
    let mut grid = false;
    let mut jobs = 0usize;
    let mut json = false;
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut board: Option<String> = None;
    let mut boards: Option<Vec<Platform>> = None;
    let mut requests = 64usize;
    let mut arrival_spec = "closed".to_string();
    let mut rate = 0.0f64;
    let mut batch = BatchPolicy::Auto;
    let mut overlap = true;
    let mut faults = FaultPlan::none();
    let mut recovery = RecoveryPolicy::default();
    let mut fleet: Option<Vec<Platform>> = None;
    let mut route = RoutePolicy::RoundRobin;
    let mut online = OnlinePolicy::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--no-factorize" => opts.factorize = false,
            "--no-decouple" => opts.decoupled = false,
            "--no-sharing" => {
                opts.memory = MemoryOptions {
                    sharing: false,
                    ..Default::default()
                }
            }
            "--no-cross-sharing" => cross_sharing = false,
            "--kernel" => kernel = Some(take_value(args, &mut i, "--kernel")?),
            "--emit" => emit = take_value(args, &mut i, "--emit")?,
            "-o" => out_dir = Some(take_value(args, &mut i, "-o")?),
            "--elements" => {
                elements = parse_value(
                    "--elements",
                    take_value(args, &mut i, "--elements")?,
                    "a positive integer",
                )?;
                elements_set = true;
            }
            "--seed" => {
                seed = parse_value(
                    "--seed",
                    take_value(args, &mut i, "--seed")?,
                    "an unsigned integer",
                )?
            }
            "--k" => {
                k = Some(parse_value(
                    "--k",
                    take_value(args, &mut i, "--k")?,
                    "a positive integer",
                )?)
            }
            "--m" => {
                m = Some(parse_value(
                    "--m",
                    take_value(args, &mut i, "--m")?,
                    "a positive integer",
                )?)
            }
            "--grid" => grid = true,
            "--board" => board = Some(take_value(args, &mut i, "--board")?),
            "--boards" => {
                let spec = take_value(args, &mut i, "--boards")?;
                boards = Some(if spec == "all" {
                    Platform::catalog()
                } else {
                    spec.split(',')
                        .map(lookup_platform)
                        .collect::<Result<Vec<_>, _>>()?
                });
            }
            "--jobs" => {
                jobs = parse_value(
                    "--jobs",
                    take_value(args, &mut i, "--jobs")?,
                    "a worker count (0 = all cores)",
                )?
            }
            "--json" => json = true,
            "--cache-dir" => cache_dir = Some(take_value(args, &mut i, "--cache-dir")?),
            "--no-cache" => no_cache = true,
            "--requests" => {
                let value = take_value(args, &mut i, "--requests")?;
                requests = parse_value("--requests", value.clone(), "a positive integer")?;
                if requests == 0 {
                    return Err(CliError::InvalidValue {
                        flag: "--requests".to_string(),
                        value,
                        expected: "a positive integer",
                    });
                }
            }
            "--arrival" => arrival_spec = take_value(args, &mut i, "--arrival")?,
            "--rate" => {
                rate = parse_value(
                    "--rate",
                    take_value(args, &mut i, "--rate")?,
                    "requests per second (a positive number)",
                )?
            }
            "--batch" => {
                let spec = take_value(args, &mut i, "--batch")?;
                batch = BatchPolicy::parse(&spec).map_err(|_| CliError::InvalidValue {
                    flag: "--batch".to_string(),
                    value: spec,
                    expected: "auto | off | a fixed fill K >= 1",
                })?;
            }
            "--no-overlap" => overlap = false,
            "--faults" => {
                let spec = take_value(args, &mut i, "--faults")?;
                faults = FaultPlan::parse(&spec).map_err(|_| CliError::InvalidValue {
                    flag: "--faults".to_string(),
                    value: spec,
                    expected:
                        "SEED:RATE, or SEED:transient=..,stall=..,corrupt=..,fail=..,recover=.. \
                               (rates in [0,1], fail/recover in seconds with recover > fail)",
                })?;
            }
            "--deadline" => {
                let value = take_value(args, &mut i, "--deadline")?;
                let d: f64 =
                    parse_value("--deadline", value.clone(), "a latency budget in seconds")?;
                if !(d.is_finite() && d > 0.0) {
                    return Err(CliError::InvalidValue {
                        flag: "--deadline".to_string(),
                        value,
                        expected: "a latency budget in seconds",
                    });
                }
                recovery.deadline_s = Some(d);
            }
            "--retries" => {
                recovery.max_retries = parse_value(
                    "--retries",
                    take_value(args, &mut i, "--retries")?,
                    "a retry cap (0 = fail on first fault)",
                )?;
            }
            "--backoff" => {
                let value = take_value(args, &mut i, "--backoff")?;
                let b: f64 = parse_value("--backoff", value.clone(), "a base backoff in seconds")?;
                if !(b.is_finite() && b >= 0.0) {
                    return Err(CliError::InvalidValue {
                        flag: "--backoff".to_string(),
                        value,
                        expected: "a base backoff in seconds",
                    });
                }
                recovery.backoff_s = b;
            }
            "--fleet" => {
                let spec = take_value(args, &mut i, "--fleet")?;
                fleet = Some(if spec == "all" {
                    Platform::catalog()
                } else {
                    spec.split(',')
                        .map(lookup_platform)
                        .collect::<Result<Vec<_>, _>>()?
                });
            }
            "--route" => {
                let spec = take_value(args, &mut i, "--route")?;
                route = RoutePolicy::parse(&spec).map_err(|_| CliError::InvalidValue {
                    flag: "--route".to_string(),
                    value: spec,
                    expected: "rr | jsq | predictive",
                })?;
            }
            "--online" => online.event_loop = true,
            "--slo" => {
                let value = take_value(args, &mut i, "--slo")?;
                let d: f64 = parse_value("--slo", value.clone(), "a p99 budget in seconds")?;
                if !(d.is_finite() && d > 0.0) {
                    return Err(CliError::InvalidValue {
                        flag: "--slo".to_string(),
                        value,
                        expected: "a p99 budget in seconds",
                    });
                }
                online.slo_s = Some(d);
            }
            "--shed" => {
                let value = take_value(args, &mut i, "--shed")?;
                let depth: usize = parse_value("--shed", value.clone(), "a queue depth >= 1")?;
                if depth == 0 {
                    return Err(CliError::InvalidValue {
                        flag: "--shed".to_string(),
                        value,
                        expected: "a queue depth >= 1",
                    });
                }
                online.shed_queue = Some(depth);
            }
            "--priority" => {
                let value = take_value(args, &mut i, "--priority")?;
                let tiers: u8 = parse_value("--priority", value.clone(), "a tier count >= 1")?;
                if tiers == 0 {
                    return Err(CliError::InvalidValue {
                        flag: "--priority".to_string(),
                        value,
                        expected: "a tier count >= 1",
                    });
                }
                online.priority_tiers = tiers;
            }
            other => return Err(CliError::UnknownOption(other.to_string())),
        }
        i += 1;
    }
    let arrival = Arrival::parse(&arrival_spec, rate).map_err(|_| CliError::InvalidValue {
        flag: "--arrival".to_string(),
        value: arrival_spec.clone(),
        expected: "closed, or poisson with --rate R > 0",
    })?;
    if let Some(name) = &board {
        let platform = lookup_platform(name)?;
        opts.hls.clock_mhz = platform.default_clock_mhz;
        opts.platform = platform;
    }
    if let (Some(k), Some(m)) = (k, m) {
        opts.system = Some(SystemConfig { k, m });
    }
    // --jobs drives both the compile-stage fan-out and (as before) the
    // exploration worker pool.
    opts.jobs = jobs;
    // Parse once: program detection, and the --kernel NAME reduction
    // of a program source to one of its kernels. (Parse errors are
    // deferred to the command's own compile for a uniform message.)
    let mut kernel_count = 1;
    if let Ok(set) = cfdlang::parse_set(&source) {
        kernel_count = set.kernels.len();
        if let Some(name) = &kernel {
            match set.find_kernel(name) {
                Some(k) => source = cfdlang::pretty(&k.program),
                None => {
                    return Err(CliError::UnknownKernel {
                        name: name.clone(),
                        kernels: set.kernel_names().iter().map(|s| s.to_string()).collect(),
                    })
                }
            }
            kernel_count = 1;
        }
    }
    Ok(Parsed {
        source,
        opts,
        cross_sharing,
        kernel_count,
        emit,
        out_dir,
        elements,
        elements_set,
        seed,
        k,
        m,
        grid,
        jobs,
        json,
        cache_dir,
        no_cache,
        boards,
        requests,
        arrival,
        batch,
        overlap,
        faults,
        recovery,
        fleet,
        route,
        online,
    })
}

/// Parse or exit with the structured one-line error (usage text when no
/// kernel was named at all).
fn parse_or_exit(args: &[String]) -> Parsed {
    match parse_common(args) {
        Ok(p) => p,
        Err(CliError::MissingKernel) => usage(),
        Err(e) => {
            eprintln!("error: {e}");
            exit(2)
        }
    }
}

/// Resolve a `--board`/`--boards` name against the platform catalog.
fn lookup_platform(name: &str) -> Result<Platform, CliError> {
    Platform::by_name(name).ok_or_else(|| CliError::UnknownBoard {
        name: name.to_string(),
        catalog: Platform::catalog().into_iter().map(|p| p.id).collect(),
    })
}

/// `cfdc boards`: the platform catalog.
fn cmd_boards() {
    println!("platform catalog (use with --board / --boards):");
    println!(
        "  id          board                       LUT        FF    DSP  BRAM36  host CPU                fabric clocks (MHz)"
    );
    for p in Platform::catalog() {
        let clocks: Vec<String> = p
            .clock_ladder_mhz
            .iter()
            .map(|c| {
                if (*c - p.default_clock_mhz).abs() < 1e-9 {
                    format!("[{c:.0}]")
                } else {
                    format!("{c:.0}")
                }
            })
            .collect();
        println!(
            "  {:<10}  {:<22}  {:>9}  {:>8}  {:>5}  {:>6}  {:<22}  {}",
            p.id,
            p.board.name,
            p.board.luts,
            p.board.ffs,
            p.board.dsps,
            p.board.brams,
            format!("{} @ {:.2} GHz", p.host.name, p.host.hz / 1e9),
            clocks.join(" "),
        );
    }
    println!("  (default clock bracketed; default board: zcu106)");
}

/// Build the `--cache-dir` cache or exit with the structured error.
fn cache_or_exit(p: &Parsed) -> Option<Arc<CompileCache>> {
    p.cache().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2)
    })
}

/// One-line cache summary on stderr — stdout stays bit-identical
/// between cold and warm runs, which the CI cache-smoke job checks.
fn report_cache(t: &cfd_core::StageTimings, enabled: bool) {
    if enabled {
        let c = &t.cache;
        eprintln!(
            "compile cache: {} memory hits, {} disk hits, {} misses, {} stored, {} invalidated",
            c.hits, c.disk_hits, c.misses, c.stores, c.invalidations
        );
    }
}

/// The `--json` compile summary: stage timings plus cache and
/// polyhedra-oracle counters.
fn timings_json(kernels: usize, t: &cfd_core::StageTimings) -> String {
    format!(
        "{{\n  \"kernels\": {},\n  \"timings_s\": {{\"frontend\": {:.6}, \"middle_end\": {:.6}, \
         \"schedule\": {:.6}, \"link\": {:.6}, \"backend\": {:.6}, \"system\": {:.6}, \"total\": {:.6}}},\n  \
         \"compile_cache\": {{\"hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"stores\": {}, \"invalidations\": {}}},\n  \
         \"polyhedra\": {}\n}}",
        kernels,
        t.frontend_s,
        t.middle_end_s,
        t.schedule_s,
        t.link_s,
        t.backend_s,
        t.system_s,
        t.total_s(),
        t.cache.hits,
        t.cache.disk_hits,
        t.cache.misses,
        t.cache.stores,
        t.cache.invalidations,
        t.oracle.json(),
    )
}

fn compile(p: &Parsed) -> cfd_core::Artifacts {
    let cache = cache_or_exit(p);
    let cached = cache.is_some();
    let art = match cache {
        Some(c) => Flow::compile_cached(&p.source, &p.opts, c),
        None => Flow::compile(&p.source, &p.opts),
    }
    .unwrap_or_else(|e| {
        eprintln!("compilation failed: {e}");
        exit(1)
    });
    report_cache(&art.timings, cached);
    art
}

fn compile_program(p: &Parsed) -> ProgramArtifacts {
    let mut opts = p.program_options();
    if let (Some(k), Some(m)) = (p.k, p.m) {
        // Uniform per-kernel replication from --k/--m.
        opts.system = Some(ProgramSystemConfig::uniform(k, m, p.kernel_count));
    }
    let cache = cache_or_exit(p);
    let cached = cache.is_some();
    let art = match cache {
        Some(c) => ProgramFlow::compile_cached(&p.source, &opts, c),
        None => ProgramFlow::compile(&p.source, &opts),
    }
    .unwrap_or_else(|e| {
        eprintln!("compilation failed: {e}");
        exit(1)
    });
    report_cache(&art.timings, cached);
    art
}

/// Compile the program for one specific fleet platform (the platform
/// and its default clock override whatever `--board` chose). Errors
/// are returned, not fatal: fleet serving skips boards the program
/// cannot target and fails only when none remain.
fn compile_program_for(p: &Parsed, platform: &Platform) -> Result<ProgramArtifacts, String> {
    let mut opts = p.program_options();
    opts.flow.platform = platform.clone();
    opts.flow.hls.clock_mhz = platform.default_clock_mhz;
    if let (Some(k), Some(m)) = (p.k, p.m) {
        opts.system = Some(ProgramSystemConfig::uniform(k, m, p.kernel_count));
    }
    let cache = cache_or_exit(p);
    match cache {
        Some(c) => ProgramFlow::compile_cached(&p.source, &opts, c),
        None => ProgramFlow::compile(&p.source, &opts),
    }
    .map_err(|e| e.to_string())
}

/// `cfdc cache stats|clear --cache-dir PATH`: inspect or empty the
/// on-disk compile cache without running a compile.
fn cmd_cache(args: &[String]) {
    let err = |e: CliError| -> ! {
        eprintln!("error: {e}");
        exit(2)
    };
    let sub = match args.first().map(String::as_str) {
        Some(s @ ("stats" | "clear")) => s,
        Some(other) => err(CliError::InvalidValue {
            flag: "cache".to_string(),
            value: other.to_string(),
            expected: "stats | clear",
        }),
        None => err(CliError::InvalidValue {
            flag: "cache".to_string(),
            value: String::new(),
            expected: "stats | clear",
        }),
    };
    let mut dir: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--cache-dir" => {
                dir = Some(take_value(args, &mut i, "--cache-dir").unwrap_or_else(|e| err(e)))
            }
            other => err(CliError::UnknownOption(other.to_string())),
        }
        i += 1;
    }
    let dir = dir.unwrap_or_else(|| {
        err(CliError::MissingValue {
            flag: "--cache-dir".to_string(),
        })
    });
    let path = std::path::Path::new(&dir);
    let cache_err = |e: std::io::Error| -> ! {
        err(CliError::CacheDir {
            path: dir.clone(),
            error: e.to_string(),
        })
    };
    match sub {
        "stats" => {
            let (entries, bytes) = CompileCache::disk_stats(path).unwrap_or_else(|e| cache_err(e));
            println!("cache at {dir}: {entries} entries, {bytes} bytes");
        }
        "clear" => {
            let removed = CompileCache::clear_disk(path).unwrap_or_else(|e| cache_err(e));
            println!("cache at {dir}: removed {removed} entries");
        }
        _ => unreachable!(),
    }
}

/// Per-kernel + aggregate resource tables of a compiled program.
fn program_report(art: &ProgramArtifacts) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "program: {} kernels, {} handoffs, cross-kernel PLM edges: {}\n",
        art.kernel_count(),
        art.cross.handoffs.len(),
        art.memory_plan.cross_edges,
    ));
    s.push_str("  kernel                  latency(cyc)      LUT      FF   DSP  PLM-BRAM(alone)\n");
    for (name, a) in art.names.iter().zip(&art.kernels) {
        s.push_str(&format!(
            "  {:<22} {:>13}  {:>7}  {:>6}  {:>4}  {:>15}\n",
            name,
            a.hls_report.latency_cycles,
            a.hls_report.luts,
            a.hls_report.ffs,
            a.hls_report.dsps,
            a.memory.brams,
        ));
    }
    s.push_str(&format!(
        "  shared PLM set: {} BRAMs ({} if concatenated) in {} units\n",
        art.memory.brams,
        art.per_kernel_plm_brams(),
        art.memory.units.len(),
    ));
    let routing = if art.options.cross_sharing {
        "in-fabric"
    } else {
        "host-mediated copy"
    };
    for h in &art.cross.handoffs {
        s.push_str(&format!(
            "  handoff: {} --{}--> {} ({} words, {routing})\n",
            art.names[h.from], h.name, art.names[h.to], h.words
        ));
    }
    match &art.system {
        Some(sys) => {
            let ks: Vec<String> = sys.config.ks.iter().map(|k| k.to_string()).collect();
            s.push_str(&format!(
                "aggregate system: k=[{}] m={} | {} LUT {} FF {} DSP {} BRAM\n",
                ks.join(","),
                sys.config.m,
                sys.luts,
                sys.ffs,
                sys.dsps,
                sys.brams
            ));
            let (l, f, d, b) = sys.slack();
            s.push_str(&format!(
                "slack vs {}: {} LUT {} FF {} DSP {} BRAM\n",
                sys.board().name,
                l,
                f,
                d,
                b
            ));
        }
        None => s.push_str("aggregate system: no feasible configuration\n"),
    }
    s
}

fn cmd_compile(args: &[String]) {
    let p = parse_or_exit(args);
    if p.is_program() {
        return cmd_compile_program(&p);
    }
    let art = compile(&p);
    let mut sections: Vec<(&str, String)> = Vec::new();
    let want = |w: &str| p.emit == w || p.emit == "all";
    if want("ir") {
        sections.push(("kernel.ir", art.module.to_string()));
    }
    if want("c") {
        sections.push(("kernel.c", art.c_source.clone()));
    }
    if want("host") {
        sections.push(("host.c", art.host_source.clone()));
    }
    if want("dot") {
        sections.push(("compat.dot", art.compat.to_dot()));
    }
    if want("memory") {
        let mut s = String::new();
        for u in &art.memory.units {
            s.push_str(&format!(
                "{}: {} words, {} BRAM36, {}R{}W, members {:?}\n",
                u.name, u.words, u.brams, u.read_ports, u.write_ports, u.members
            ));
        }
        s.push_str(&format!("total {} BRAMs\n", art.memory.brams));
        sections.push(("memory.txt", s));
    }
    if want("report") {
        let mut s = art.hls_report.to_string();
        if let Some(sys) = &art.system {
            s.push_str(&format!(
                "\nsystem: k={} m={} | {} LUT {} FF {} DSP {} BRAM\n",
                sys.config.k, sys.config.m, sys.luts, sys.ffs, sys.dsps, sys.brams
            ));
        }
        sections.push(("report.txt", s));
    }
    if sections.is_empty() {
        eprintln!("nothing to emit for '--emit {}'", p.emit);
        exit(2);
    }
    match &p.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create '{dir}': {e}");
                exit(1)
            });
            for (name, content) in &sections {
                let path = format!("{dir}/{name}");
                std::fs::write(&path, content).unwrap_or_else(|e| {
                    eprintln!("cannot write '{path}': {e}");
                    exit(1)
                });
                println!("wrote {path}");
            }
        }
        None => {
            for (name, content) in &sections {
                println!("=== {name} ===\n{content}");
            }
        }
    }
    if p.json {
        println!("{}", timings_json(1, &art.timings));
    }
}

fn cmd_compile_program(p: &Parsed) {
    let art = compile_program(p);
    let mut sections: Vec<(String, String)> = Vec::new();
    let want = |w: &str| p.emit == w || p.emit == "all";
    if want("ir") {
        for (name, a) in art.names.iter().zip(&art.kernels) {
            sections.push((format!("{name}.ir"), a.module.to_string()));
        }
    }
    if want("c") {
        // Program-unique symbols (`<stage>_body`) so the emitted
        // sources link into one system.
        for (i, name) in art.names.iter().enumerate() {
            sections.push((format!("{name}.c"), art.stage_c_source(i)));
        }
    }
    if want("host") {
        sections.push(("host.c".to_string(), art.host_source.clone()));
    }
    if want("dot") {
        for (name, a) in art.names.iter().zip(&art.kernels) {
            sections.push((format!("{name}.compat.dot"), a.compat.to_dot()));
        }
    }
    if want("memory") {
        let mut s = String::new();
        for u in &art.memory.units {
            s.push_str(&format!(
                "{}: {} words, {} BRAM36, {}R{}W, members {:?}\n",
                u.name, u.words, u.brams, u.read_ports, u.write_ports, u.members
            ));
        }
        s.push_str(&format!(
            "total {} BRAMs ({} cross-kernel units)\n",
            art.memory.brams,
            art.memory_plan.cross_kernel_units(&art.memory)
        ));
        sections.push(("memory.txt".to_string(), s));
    }
    if want("report") {
        sections.push(("report.txt".to_string(), program_report(&art)));
    }
    if sections.is_empty() {
        eprintln!("nothing to emit for '--emit {}'", p.emit);
        exit(2);
    }
    match &p.out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create '{dir}': {e}");
                exit(1)
            });
            for (name, content) in &sections {
                let path = format!("{dir}/{name}");
                std::fs::write(&path, content).unwrap_or_else(|e| {
                    eprintln!("cannot write '{path}': {e}");
                    exit(1)
                });
                println!("wrote {path}");
            }
        }
        None => {
            for (name, content) in &sections {
                println!("=== {name} ===\n{content}");
            }
        }
    }
    if p.json {
        println!("{}", timings_json(art.kernel_count(), &art.timings));
    }
}

fn cmd_simulate(args: &[String]) {
    let p = parse_or_exit(args);
    if p.is_program() {
        let art = compile_program(&p);
        let r = art
            .simulate(&SimConfig {
                elements: p.elements,
                ..Default::default()
            })
            .unwrap_or_else(|e| {
                eprintln!("simulation failed: {e}");
                exit(1)
            });
        let ks: Vec<String> = r.ks.iter().map(|k| k.to_string()).collect();
        println!(
            "program k=[{}] m={} | {} elements in {} rounds",
            ks.join(","),
            r.m,
            r.elements,
            r.rounds
        );
        for (name, exec) in art.names.iter().zip(&r.stage_exec_s) {
            println!("  stage {name}: exec {exec:.4} s");
        }
        println!(
            "exec {:.4} s | transfers {:.4} s | total {:.4} s ({:.2} ms/element)",
            r.exec_s,
            r.transfer_s,
            r.total_s,
            r.total_per_element_s() * 1e3
        );
        return;
    }
    let art = compile(&p);
    let r = art
        .simulate(&SimConfig {
            elements: p.elements,
            ..Default::default()
        })
        .unwrap_or_else(|e| {
            eprintln!("simulation failed: {e}");
            exit(1)
        });
    println!(
        "k={} m={} | {} elements in {} rounds",
        r.k, r.m, r.elements, r.rounds
    );
    println!(
        "exec {:.4} s | transfers {:.4} s | total {:.4} s ({:.2} ms/element)",
        r.exec_s,
        r.transfer_s,
        r.total_s,
        r.total_per_element_s() * 1e3
    );
    let (sw_ref, sw_hls) = art.sw_times(p.elements).unwrap();
    println!(
        "ARM A53: reference {:.4} s, HLS-style code {:.4} s -> HW speedup {:.2}x",
        sw_ref.total_s,
        sw_hls.total_s,
        sw_ref.total_s / r.total_s
    );
}

fn cmd_verify(args: &[String]) {
    let mut p = parse_or_exit(args);
    if !p.elements_set {
        p.elements = 8; // verification default: a sample, not the full run
    }
    if p.is_program() {
        let art = compile_program(&p);
        let v = art.verify(p.elements, p.seed).unwrap_or_else(|e| {
            eprintln!("verification failed: {e}");
            exit(1)
        });
        println!(
            "verified {} chained elements ({} kernels): bitexact={}, max_rel_diff={:.3e}",
            v.elements,
            art.kernel_count(),
            v.bitexact,
            v.max_rel_diff
        );
        if !v.bitexact {
            exit(1);
        }
        return;
    }
    let art = compile(&p);
    let v = art.verify(p.elements, p.seed).unwrap_or_else(|e| {
        eprintln!("verification failed: {e}");
        exit(1)
    });
    println!(
        "verified {} elements: bitexact={}, max_rel_diff={:.3e}",
        v.elements, v.bitexact, v.max_rel_diff
    );
    if !v.bitexact {
        exit(1);
    }
}

/// `cfdc serve`: batched multi-request runtime on the compiled system.
/// Single-kernel sources serve as the degenerate one-kernel program.
fn cmd_serve(args: &[String]) {
    let p = parse_or_exit(args);
    if p.fleet.is_some() {
        return cmd_serve_fleet(&p);
    }
    let art = compile_program(&p);
    let opts = p.runtime_options();
    let out = art.serve(&opts).unwrap_or_else(|e| {
        eprintln!("serving failed: {e}");
        exit(1)
    });
    if p.json {
        println!("{}", out.report.to_json());
        return;
    }
    print!("{}", out.report.render_table());
    // With --batch off the run IS the sequential baseline — comparing it
    // against itself would just print a meaningless 1.00x.
    if p.batch == BatchPolicy::Disabled {
        return;
    }
    let seq = art.serve_sequential_baseline(&opts).unwrap_or_else(|e| {
        eprintln!("serving failed: {e}");
        exit(1)
    });
    println!(
        "sequential baseline: {:.1} req/s -> batching speedup {:.2}x",
        seq.throughput_rps,
        out.report.throughput_rps / seq.throughput_rps
    );
}

/// `cfdc serve --fleet`: shard the request stream across a board set.
/// The program is compiled once per distinct platform; boards the
/// program cannot target are skipped with a warning. `--faults` arms
/// board 0 only, so an outage always leaves survivors to requeue onto.
fn cmd_serve_fleet(p: &Parsed) {
    let platforms = p.fleet.as_ref().expect("fleet platforms");
    // One compile per distinct platform id — repeated boards share it.
    let mut compiled: Vec<(String, Result<ProgramArtifacts, String>)> = Vec::new();
    for platform in platforms {
        if !compiled.iter().any(|(id, _)| *id == platform.id) {
            compiled.push((platform.id.clone(), compile_program_for(p, platform)));
        }
    }
    let art_for = |id: &str| &compiled.iter().find(|(cid, _)| cid == id).unwrap().1;
    // Board list in catalog order, with repeats of one platform named
    // id#2, id#3, ... and --faults armed on the first board only.
    let mut boards: Vec<FleetBoard> = Vec::new();
    let mut reference: Option<&ProgramArtifacts> = None;
    for platform in platforms {
        let art = match art_for(&platform.id) {
            Ok(art) => art,
            Err(e) => {
                eprintln!("warning: skipping {}: {e}", platform.id);
                continue;
            }
        };
        let Some(design) = art.system.clone() else {
            eprintln!(
                "warning: skipping {}: program has no system design for this board",
                platform.id
            );
            continue;
        };
        reference.get_or_insert(art);
        let mut board = FleetBoard::healthy(design);
        let repeats = boards
            .iter()
            .filter(|b| b.name.starts_with(&board.name))
            .count();
        if repeats > 0 {
            board.name = format!("{}#{}", board.name, repeats + 1);
        }
        if boards.is_empty() {
            board.faults = p.faults.clone();
        }
        boards.push(board);
    }
    let Some(art) = reference else {
        eprintln!("no fleet board fits the program");
        exit(1)
    };
    let fopts = FleetOptions {
        route: p.route,
        parallel: true,
        base: p.runtime_options(),
    };
    let out = art.serve_fleet(&boards, &fopts).unwrap_or_else(|e| {
        eprintln!("fleet serving failed: {e}");
        exit(1)
    });
    if p.json {
        println!("{}", out.report.to_json());
        return;
    }
    print!("{}", out.report.render_table());
}

fn cmd_explore(args: &[String]) {
    let p = parse_or_exit(args);
    if p.is_program() {
        return cmd_explore_program(&p);
    }
    let engine = DseEngine::prepare(&p.source, &p.opts).unwrap_or_else(|e| {
        eprintln!("compilation failed: {e}");
        exit(1)
    });
    if let Some(platforms) = &p.boards {
        let elements = if p.elements_set { p.elements } else { 10_000 };
        let report = engine.run_portfolio(platforms, &DseGrid::default(), p.jobs, elements);
        return print_portfolio(&report, p.json);
    }
    if p.grid {
        // Sweep default: small enough to keep 32 simulations quick.
        let elements = if p.elements_set { p.elements } else { 10_000 };
        let report = engine.run(&DseGrid::default(), p.jobs, elements);
        if p.json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_table());
            if let Some(best) = report.best() {
                println!(
                    "best: {} ({:.0} elements/s)",
                    best.point.label(),
                    best.throughput_eps
                );
            }
        }
        return;
    }
    // Legacy listing: one backend pass, then Eq. (3) over all (k, m).
    let be = engine.pipeline().backend(engine.scheduled(), &p.opts);
    explore_listing(&p, &be);
}

/// Render a portfolio sweep (table or JSON) with its Pareto frontier.
fn print_portfolio(report: &cfd_core::dse::PortfolioReport, json: bool) {
    if json {
        println!("{}", report.to_json());
        return;
    }
    print!("{}", report.render_table());
    let frontier = report.pareto_frontier();
    println!("pareto frontier ({} points):", frontier.len());
    for o in frontier {
        println!(
            "  {} @ {:.0} MHz: k={} m={} -> {:.4} s ({:.0} el/s) at {:.1}% fit",
            o.platform,
            o.clock_mhz,
            o.outcome.point.k,
            o.outcome.point.m,
            o.outcome.total_s,
            o.outcome.throughput_eps,
            o.utilization * 100.0
        );
    }
    let service = report.service_frontier();
    println!("service frontier ({} points):", service.len());
    for o in service {
        println!(
            "  {} @ {:.0} MHz: k={} m={} -> {:.0} req/s at p99 {:.4} s, {:.1}% fit",
            o.platform,
            o.clock_mhz,
            o.outcome.point.k,
            o.outcome.point.m,
            o.outcome.service_rps,
            o.outcome.service_p99_s,
            o.utilization * 100.0
        );
    }
    let cost = report.cost_frontier();
    println!("cost-efficiency frontier ({} points):", cost.len());
    for (o, per_kluts) in cost {
        println!(
            "  {} @ {:.0} MHz: k={} m={} -> {:.0} req/s, {:.1} req/s per kLUT ({} LUTs)",
            o.platform,
            o.clock_mhz,
            o.outcome.point.k,
            o.outcome.point.m,
            o.outcome.service_rps,
            per_kluts,
            o.outcome.luts
        );
    }
}

/// Joint exploration of a multi-kernel program.
fn cmd_explore_program(p: &Parsed) {
    if let Some(platforms) = &p.boards {
        let engine =
            ProgramDseEngine::prepare(&p.source, &p.program_options()).unwrap_or_else(|e| {
                eprintln!("compilation failed: {e}");
                exit(1)
            });
        let elements = if p.elements_set { p.elements } else { 10_000 };
        let report = engine.run_portfolio(platforms, &DseGrid::default(), p.jobs, elements);
        return print_portfolio(&report, p.json);
    }
    if p.grid {
        let engine =
            ProgramDseEngine::prepare(&p.source, &p.program_options()).unwrap_or_else(|e| {
                eprintln!("compilation failed: {e}");
                exit(1)
            });
        let elements = if p.elements_set { p.elements } else { 10_000 };
        let report = engine.run(&DseGrid::default(), p.jobs, elements);
        if p.json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_table());
            if let Some(best) = report.best() {
                println!(
                    "best: {} ({:.0} elements/s, program {})",
                    best.point.label(),
                    best.throughput_eps,
                    best.kernel
                );
            }
        }
        return;
    }
    // Listing mode: compile the program once, enumerate uniform configs.
    let art = ProgramFlow::compile(&p.source, &p.program_options()).unwrap_or_else(|e| {
        eprintln!("compilation failed: {e}");
        exit(1)
    });
    print!("{}", program_report(&art));
    let stages: Vec<(String, hls::HlsReport)> = art
        .names
        .iter()
        .zip(&art.kernels)
        .map(|(n, a)| (n.clone(), a.hls_report.clone()))
        .collect();
    println!(
        "feasible uniform configurations on {}:",
        p.opts.platform.board.name
    );
    println!("   k    m     LUT   BRAM");
    for d in sysgen::enumerate_program_designs(&p.opts.platform, &stages, &art.memory) {
        println!(
            "  {:>2}  {:>3}  {:>6}  {:>5}",
            d.config.ks[0], d.config.m, d.luts, d.brams
        );
    }
}

/// The single-kernel feasibility listing.
fn explore_listing(p: &Parsed, be: &cfd_core::pipeline::Backend) {
    let platform = &p.opts.platform;
    println!(
        "kernel: {} LUT {} FF {} DSP | PLM {} BRAM",
        be.hls_report.luts, be.hls_report.ffs, be.hls_report.dsps, be.memory.brams
    );
    println!("feasible configurations on {}:", platform.board.name);
    println!("   k    m  batch     LUT   BRAM   slack(BRAM)");
    for cfg in sysgen::enumerate_configs(platform, &be.hls_report, &be.memory) {
        let host = sysgen::HostProgram::from_kernel(&be.kernel, cfg);
        if let Some(d) =
            sysgen::SystemDesign::build(platform, &be.hls_report, &be.memory, cfg, host)
        {
            let (_, _, _, sb) = d.slack();
            println!(
                "  {:>2}  {:>3}  {:>4}   {:>6}  {:>5}   {:>6}",
                cfg.k,
                cfg.m,
                cfg.batch(),
                d.luts,
                d.brams,
                sb
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn malformed_numeric_flag_values_are_structured_errors() {
        for (flag, bad) in [
            ("--k", "x"),
            ("--m", "2.5"),
            ("--elements", "lots"),
            ("--jobs", "-1"),
            ("--seed", "0x2a"),
            ("--requests", "many"),
            ("--requests", "0"),
            ("--rate", "fast"),
        ] {
            let e = parse_common(&args(&["axpy:2", flag, bad])).unwrap_err();
            match &e {
                CliError::InvalidValue { flag: f, value, .. } => {
                    assert_eq!(f, flag);
                    assert_eq!(value, bad);
                }
                other => panic!("{flag} {bad}: expected InvalidValue, got {other:?}"),
            }
            // And the rendered message names the flag and the value.
            let msg = e.to_string();
            assert!(msg.contains(flag) && msg.contains(bad), "{msg}");
        }
    }

    #[test]
    fn missing_value_at_end_of_args_is_reported() {
        for flag in [
            "--k",
            "--elements",
            "--boards",
            "--batch",
            "--emit",
            "--cache-dir",
            "--fleet",
            "--route",
        ] {
            let e = parse_common(&args(&["axpy:2", flag])).unwrap_err();
            assert_eq!(
                e,
                CliError::MissingValue {
                    flag: flag.to_string()
                }
            );
        }
    }

    #[test]
    fn unknown_options_and_boards_are_reported() {
        assert!(matches!(
            parse_common(&args(&["axpy:2", "--grids"])).unwrap_err(),
            CliError::UnknownOption(o) if o == "--grids"
        ));
        let e = parse_common(&args(&["axpy:2", "--board", "zcu9999"])).unwrap_err();
        match e {
            CliError::UnknownBoard { name, catalog } => {
                assert_eq!(name, "zcu9999");
                assert!(catalog.iter().any(|c| c == "zcu106"));
            }
            other => panic!("expected UnknownBoard, got {other:?}"),
        }
        // A malformed entry inside a --boards list fails the same way.
        let e = parse_common(&args(&["axpy:2", "--boards", "zcu106,bogus"])).unwrap_err();
        assert!(matches!(e, CliError::UnknownBoard { name, .. } if name == "bogus"));
    }

    #[test]
    fn malformed_builtin_kernel_parameters_are_reported() {
        let e = parse_common(&args(&["helmholtz:eleven"])).unwrap_err();
        assert!(
            matches!(&e, CliError::InvalidValue { value, .. } if value == "eleven"),
            "{e:?}"
        );
        let e = parse_common(&args(&["interpolation:4:big"])).unwrap_err();
        assert!(matches!(&e, CliError::InvalidValue { value, .. } if value == "big"));
    }

    #[test]
    fn serve_flags_validate_policy_and_arrival() {
        let e = parse_common(&args(&["axpy:2", "--batch", "wat"])).unwrap_err();
        assert!(matches!(&e, CliError::InvalidValue { flag, .. } if flag == "--batch"));
        let e = parse_common(&args(&["axpy:2", "--batch", "0"])).unwrap_err();
        assert!(matches!(&e, CliError::InvalidValue { flag, .. } if flag == "--batch"));
        let e = parse_common(&args(&["axpy:2", "--arrival", "burst"])).unwrap_err();
        assert!(matches!(&e, CliError::InvalidValue { flag, .. } if flag == "--arrival"));
        // Poisson without a positive --rate is rejected up front.
        let e = parse_common(&args(&["axpy:2", "--arrival", "poisson"])).unwrap_err();
        assert!(matches!(&e, CliError::InvalidValue { flag, .. } if flag == "--arrival"));
        let p = parse_common(&args(&[
            "axpy:2",
            "--arrival",
            "poisson",
            "--rate",
            "50",
            "--batch",
            "4",
        ]))
        .unwrap();
        assert_eq!(p.arrival, Arrival::Poisson { rate_rps: 50.0 });
        assert_eq!(p.batch, BatchPolicy::Fixed(4));
    }

    #[test]
    fn fleet_flags_parse_boards_and_routing_policy() {
        // Defaults: no fleet, round-robin routing.
        let p = parse_common(&args(&["axpy:2"])).unwrap();
        assert!(p.fleet.is_none());
        assert_eq!(p.route, RoutePolicy::RoundRobin);
        // --fleet all expands to the whole catalog.
        let p = parse_common(&args(&["axpy:2", "--fleet", "all"])).unwrap();
        assert_eq!(p.fleet.as_ref().unwrap().len(), Platform::catalog().len());
        // A comma-separated list resolves each name (repeats allowed).
        let p = parse_common(&args(&[
            "axpy:2",
            "--fleet",
            "zcu106,pynq-z2,zcu106",
            "--route",
            "predictive",
        ]))
        .unwrap();
        let ids: Vec<&str> = p
            .fleet
            .as_ref()
            .unwrap()
            .iter()
            .map(|pl| pl.id.as_str())
            .collect();
        assert_eq!(ids, ["zcu106", "pynq-z2", "zcu106"]);
        assert_eq!(p.route, RoutePolicy::Predictive);
        // jsq parses; unknown policies and boards are structured errors.
        let p = parse_common(&args(&["axpy:2", "--fleet", "all", "--route", "jsq"])).unwrap();
        assert_eq!(p.route, RoutePolicy::ShortestQueue);
        let e = parse_common(&args(&["axpy:2", "--route", "fastest"])).unwrap_err();
        assert!(matches!(
            &e,
            CliError::InvalidValue { flag, value, .. }
                if flag == "--route" && value == "fastest"
        ));
        let e = parse_common(&args(&["axpy:2", "--fleet", "zcu106,nope"])).unwrap_err();
        assert!(matches!(&e, CliError::UnknownBoard { name, .. } if name == "nope"));
    }

    #[test]
    fn fault_flags_parse_and_reach_the_runtime_options() {
        let p = parse_common(&args(&[
            "axpychain:3",
            "--faults",
            "7:transient=0.1,corrupt=0.05",
            "--retries",
            "5",
            "--backoff",
            "0.002",
            "--deadline",
            "0.5",
        ]))
        .unwrap();
        assert!(p.faults.armed());
        assert_eq!(p.faults.label(), "seed=7,transient=0.1,corrupt=0.05");
        assert_eq!(p.recovery.max_retries, 5);
        assert_eq!(p.recovery.backoff_s, 0.002);
        assert_eq!(p.recovery.deadline_s, Some(0.5));
        let opts = p.runtime_options();
        assert_eq!(opts.faults, p.faults);
        assert_eq!(opts.recovery, p.recovery);
        // Bare-rate shorthand: SEED:RATE arms transient errors only.
        let p = parse_common(&args(&["axpy:2", "--faults", "3:0.25"])).unwrap();
        assert_eq!(p.faults, FaultPlan::transient(3, 0.25));
        // Defaults: no plan, stock policy.
        let p = parse_common(&args(&["axpy:2"])).unwrap();
        assert!(!p.faults.armed());
        assert_eq!(p.recovery, RecoveryPolicy::default());
    }

    #[test]
    fn malformed_fault_flags_are_structured_errors() {
        for (flag, bad) in [
            ("--faults", "nocolon"),
            ("--faults", "x:0.1"),
            ("--faults", "7:1.5"),
            ("--faults", "7:transient=-0.1"),
            ("--faults", "7:wat=1"),
            ("--faults", "7:fail=2e-3,recover=1e-3"),
            ("--deadline", "0"),
            ("--deadline", "-1"),
            ("--deadline", "inf"),
            ("--deadline", "soon"),
            ("--retries", "-2"),
            ("--retries", "few"),
            ("--backoff", "-0.1"),
            ("--backoff", "NaN"),
        ] {
            let e = parse_common(&args(&["axpy:2", flag, bad])).unwrap_err();
            match &e {
                CliError::InvalidValue { flag: f, value, .. } => {
                    assert_eq!(f, flag);
                    assert_eq!(value, bad);
                }
                other => panic!("{flag} {bad}: expected InvalidValue, got {other:?}"),
            }
        }
        for flag in ["--faults", "--deadline", "--retries", "--backoff"] {
            let e = parse_common(&args(&["axpy:2", flag])).unwrap_err();
            assert_eq!(
                e,
                CliError::MissingValue {
                    flag: flag.to_string()
                }
            );
        }
    }

    #[test]
    fn unknown_program_kernel_selection_is_reported() {
        let e = parse_common(&args(&["axpychain:3", "--kernel", "nope"])).unwrap_err();
        match e {
            CliError::UnknownKernel { name, kernels } => {
                assert_eq!(name, "nope");
                assert_eq!(kernels, vec!["axpy_scale", "axpy_update"]);
            }
            other => panic!("expected UnknownKernel, got {other:?}"),
        }
    }

    #[test]
    fn unreadable_paths_are_reported_not_panicked() {
        let e = parse_common(&args(&["/nonexistent/kernel.cfd"])).unwrap_err();
        assert!(matches!(&e, CliError::CannotRead { path, .. } if path.contains("nonexistent")));
    }

    #[test]
    fn unusable_cache_dir_is_a_structured_error() {
        // A path under a file can never become a directory.
        let p = parse_common(&args(&["axpy:2", "--cache-dir", "/dev/null/sub"])).unwrap();
        let e = p.cache().unwrap_err();
        match &e {
            CliError::CacheDir { path, .. } => assert_eq!(path, "/dev/null/sub"),
            other => panic!("expected CacheDir, got {other:?}"),
        }
        assert!(e.to_string().contains("/dev/null/sub"));
        // --no-cache disables the cache even when a directory is named.
        let p = parse_common(&args(&[
            "axpy:2",
            "--cache-dir",
            "/dev/null/sub",
            "--no-cache",
        ]))
        .unwrap();
        assert!(p.cache().unwrap().is_none());
        // And no --cache-dir means no cache at all.
        let p = parse_common(&args(&["axpy:2"])).unwrap();
        assert!(p.cache().unwrap().is_none());
    }

    #[test]
    fn jobs_flag_reaches_the_flow_options() {
        let p = parse_common(&args(&["axpy:2", "--jobs", "3"])).unwrap();
        assert_eq!(p.opts.jobs, 3);
        assert_eq!(p.jobs, 3);
        let p = parse_common(&args(&["axpy:2"])).unwrap();
        assert_eq!(p.opts.jobs, 0);
    }

    #[test]
    fn wellformed_args_parse_with_defaults() {
        let p = parse_common(&args(&["axpychain:3", "--requests", "16", "--no-overlap"])).unwrap();
        assert_eq!(p.kernel_count, 2);
        assert!(p.is_program());
        assert_eq!(p.requests, 16);
        assert!(!p.overlap);
        assert_eq!(p.batch, BatchPolicy::Auto);
        assert_eq!(p.arrival, Arrival::Closed);
        assert_eq!(p.elements, 50_000);
        assert!(!p.elements_set);
    }
}
