//! Token definitions for CFDlang.

use crate::diag::Span;
use std::fmt;

/// Token kinds of the CFDlang surface syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Keywords
    Var,
    Input,
    Output,
    Type,
    Kernel,
    // Punctuation
    Colon,
    Equals,
    LBracket,
    RBracket,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Hash,
    Star,
    Plus,
    Minus,
    Slash,
    Dot,
    // Literals / identifiers
    Ident(String),
    Int(u64),
    // End of input
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Var => write!(f, "'var'"),
            TokenKind::Input => write!(f, "'input'"),
            TokenKind::Output => write!(f, "'output'"),
            TokenKind::Type => write!(f, "'type'"),
            TokenKind::Kernel => write!(f, "'kernel'"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::Equals => write!(f, "'='"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::Hash => write!(f, "'#'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_quoted() {
        assert_eq!(TokenKind::Hash.to_string(), "'#'");
        assert_eq!(TokenKind::Ident("S".into()).to_string(), "identifier 'S'");
        assert_eq!(TokenKind::Int(11).to_string(), "integer 11");
    }
}
