//! Canonical CFDlang programs used throughout the evaluation.
//!
//! These generate the kernels from the paper parameterized by the
//! polynomial degree `p` (the paper evaluates `p = 11`).

/// The Inverse Helmholtz operator of Figure 1, for `(p+1)`-point bases —
/// pass `n = p` to get tensors of extent `p`. The paper's instance is
/// `inverse_helmholtz(11)` (extent 11 per dimension).
///
/// ```text
/// t = (Sᵀ ⊗ Sᵀ ⊗ Sᵀ) u       (Eq. 1a)
/// r = D ∘ t                   (Eq. 1b, Hadamard)
/// v = (S ⊗ S ⊗ S) r           (Eq. 1c)
/// ```
pub fn inverse_helmholtz(n: usize) -> String {
    format!(
        "var input S : [{n} {n}]\n\
         var input D : [{n} {n} {n}]\n\
         var input u : [{n} {n} {n}]\n\
         var output v : [{n} {n} {n}]\n\
         var t : [{n} {n} {n}]\n\
         var r : [{n} {n} {n}]\n\
         t = S # S # S # u . [[1 6] [3 7] [5 8]]\n\
         r = D * t\n\
         v = S # S # S # r . [[0 6] [2 7] [4 8]]\n"
    )
}

/// Tensor-product interpolation: evaluate a degree-`n` element at `m`
/// points per direction, `o = (P ⊗ P ⊗ P) u`. This is the "simpler
/// operator subsumed by the Inverse Helmholtz" mentioned in Section II-A.
pub fn interpolation(n: usize, m: usize) -> String {
    format!(
        "var input P : [{m} {n}]\n\
         var input u : [{n} {n} {n}]\n\
         var output o : [{m} {m} {m}]\n\
         o = P # P # P # u . [[1 6] [3 7] [5 8]]\n"
    )
}

/// A single 2-D matrix-apply `o = Sᵀ A S` expressed as two contractions —
/// a small kernel used by unit tests and the quickstart example.
pub fn matrix_sandwich(n: usize) -> String {
    format!(
        "var input S : [{n} {n}]\n\
         var input A : [{n} {n}]\n\
         var output o : [{n} {n}]\n\
         var w : [{n} {n}]\n\
         w = S # A . [[0 2]]\n\
         o = w # S . [[1 2]]\n"
    )
}

/// Element-wise AXPY-like update `o = a * x + y` (no contraction) —
/// exercises the pointwise-only path of the flow.
pub fn axpy(n: usize) -> String {
    format!(
        "var input x : [{n} {n} {n}]\n\
         var input y : [{n} {n} {n}]\n\
         var input a : []\n\
         var output o : [{n} {n} {n}]\n\
         o = a * x + y\n"
    )
}

#[cfg(test)]
mod tests {
    use crate::{check, parse};

    #[test]
    fn all_examples_check() {
        for src in [
            super::inverse_helmholtz(11),
            super::inverse_helmholtz(4),
            super::interpolation(4, 7),
            super::matrix_sandwich(8),
            super::axpy(5),
        ] {
            let p = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            check(&p).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }

    #[test]
    fn interpolation_changes_shape() {
        let t = check(&parse(&super::interpolation(4, 7)).unwrap()).unwrap();
        assert_eq!(t.shape_of("o"), Some(&[7, 7, 7][..]));
        assert_eq!(t.shape_of("u"), Some(&[4, 4, 4][..]));
    }
}
