//! Canonical CFDlang programs used throughout the evaluation.
//!
//! These generate the kernels from the paper parameterized by the
//! polynomial degree `p` (the paper evaluates `p = 11`).

/// The Inverse Helmholtz operator of Figure 1, for `(p+1)`-point bases —
/// pass `n = p` to get tensors of extent `p`. The paper's instance is
/// `inverse_helmholtz(11)` (extent 11 per dimension).
///
/// ```text
/// t = (Sᵀ ⊗ Sᵀ ⊗ Sᵀ) u       (Eq. 1a)
/// r = D ∘ t                   (Eq. 1b, Hadamard)
/// v = (S ⊗ S ⊗ S) r           (Eq. 1c)
/// ```
pub fn inverse_helmholtz(n: usize) -> String {
    format!(
        "var input S : [{n} {n}]\n\
         var input D : [{n} {n} {n}]\n\
         var input u : [{n} {n} {n}]\n\
         var output v : [{n} {n} {n}]\n\
         var t : [{n} {n} {n}]\n\
         var r : [{n} {n} {n}]\n\
         t = S # S # S # u . [[1 6] [3 7] [5 8]]\n\
         r = D * t\n\
         v = S # S # S # r . [[0 6] [2 7] [4 8]]\n"
    )
}

/// Tensor-product interpolation: evaluate a degree-`n` element at `m`
/// points per direction, `o = (P ⊗ P ⊗ P) u`. This is the "simpler
/// operator subsumed by the Inverse Helmholtz" mentioned in Section II-A.
pub fn interpolation(n: usize, m: usize) -> String {
    format!(
        "var input P : [{m} {n}]\n\
         var input u : [{n} {n} {n}]\n\
         var output o : [{m} {m} {m}]\n\
         o = P # P # P # u . [[1 6] [3 7] [5 8]]\n"
    )
}

/// A single 2-D matrix-apply `o = Sᵀ A S` expressed as two contractions —
/// a small kernel used by unit tests and the quickstart example.
pub fn matrix_sandwich(n: usize) -> String {
    format!(
        "var input S : [{n} {n}]\n\
         var input A : [{n} {n}]\n\
         var output o : [{n} {n}]\n\
         var w : [{n} {n}]\n\
         w = S # A . [[0 2]]\n\
         o = w # S . [[1 2]]\n"
    )
}

/// Element-wise AXPY-like update `o = a * x + y` (no contraction) —
/// exercises the pointwise-only path of the flow.
pub fn axpy(n: usize) -> String {
    format!(
        "var input x : [{n} {n} {n}]\n\
         var input y : [{n} {n} {n}]\n\
         var input a : []\n\
         var output o : [{n} {n} {n}]\n\
         o = a * x + y\n"
    )
}

/// A whole CFD time-step as a **multi-kernel program**: interpolation of
/// the solution onto the working basis, the Inverse Helmholtz solve, and
/// a final projection (the third sandwich contraction applied with its
/// own operator) — three kernels chained through name-matched tensor
/// handoffs (`u` from `interpolate` into `inverse_helmholtz`, `v` from
/// `inverse_helmholtz` into `project`). Compiles into one shared-memory
/// accelerator system; see `cfd_core::program`.
pub fn simulation_step(n: usize) -> String {
    format!(
        "kernel interpolate {{\n\
         \tvar input P : [{n} {n}]\n\
         \tvar input u0 : [{n} {n} {n}]\n\
         \tvar output u : [{n} {n} {n}]\n\
         \tu = P # P # P # u0 . [[1 6] [3 7] [5 8]]\n\
         }}\n\
         kernel inverse_helmholtz {{\n\
         \tvar input S : [{n} {n}]\n\
         \tvar input D : [{n} {n} {n}]\n\
         \tvar input u : [{n} {n} {n}]\n\
         \tvar output v : [{n} {n} {n}]\n\
         \tvar t : [{n} {n} {n}]\n\
         \tvar r : [{n} {n} {n}]\n\
         \tt = S # S # S # u . [[1 6] [3 7] [5 8]]\n\
         \tr = D * t\n\
         \tv = S # S # S # r . [[0 6] [2 7] [4 8]]\n\
         }}\n\
         kernel project {{\n\
         \tvar input Q : [{n} {n}]\n\
         \tvar input v : [{n} {n} {n}]\n\
         \tvar output w : [{n} {n} {n}]\n\
         \tw = Q # Q # Q # v . [[1 6] [3 7] [5 8]]\n\
         }}\n"
    )
}

/// A small two-kernel pointwise chain: `w = a·x + y`, then
/// `o = w·s + x` — exercises the pointwise-only multi-kernel path.
pub fn axpy_chain(n: usize) -> String {
    format!(
        "kernel axpy_scale {{\n\
         \tvar input x : [{n} {n} {n}]\n\
         \tvar input y : [{n} {n} {n}]\n\
         \tvar input a : []\n\
         \tvar output w : [{n} {n} {n}]\n\
         \tw = a * x + y\n\
         }}\n\
         kernel axpy_update {{\n\
         \tvar input w : [{n} {n} {n}]\n\
         \tvar input x : [{n} {n} {n}]\n\
         \tvar input s : []\n\
         \tvar output o : [{n} {n} {n}]\n\
         \to = w * s + x\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use crate::{check, check_set, parse, parse_set};

    #[test]
    fn all_examples_check() {
        for src in [
            super::inverse_helmholtz(11),
            super::inverse_helmholtz(4),
            super::interpolation(4, 7),
            super::matrix_sandwich(8),
            super::axpy(5),
        ] {
            let p = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            check(&p).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }

    #[test]
    fn multi_kernel_examples_check_and_link() {
        let step = check_set(&parse_set(&super::simulation_step(4)).unwrap()).unwrap();
        assert_eq!(
            step.kernel_names(),
            vec!["interpolate", "inverse_helmholtz", "project"]
        );
        // u: interpolate → inverse_helmholtz; v: inverse_helmholtz → project.
        assert_eq!(step.links.len(), 2);
        assert_eq!(step.links[0].name, "u");
        assert_eq!((step.links[0].from, step.links[0].to), (0, 1));
        assert_eq!(step.links[1].name, "v");
        assert_eq!((step.links[1].from, step.links[1].to), (1, 2));
        // Host interface: P, u0, S, D, Q are external; only w returns.
        assert_eq!(step.external_inputs().len(), 5);
        assert_eq!(step.external_outputs(), vec![(2, "w".to_string())]);

        let chain = check_set(&parse_set(&super::axpy_chain(5)).unwrap()).unwrap();
        assert_eq!(chain.links.len(), 1);
        assert_eq!(chain.links[0].name, "w");
    }

    #[test]
    fn interpolation_changes_shape() {
        let t = check(&parse(&super::interpolation(4, 7)).unwrap()).unwrap();
        assert_eq!(t.shape_of("o"), Some(&[7, 7, 7][..]));
        assert_eq!(t.shape_of("u"), Some(&[4, 4, 4][..]));
    }
}
