//! Source spans and diagnostics.

use std::fmt;

/// A half-open byte range into the source, with line/column of the start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// Merge two spans into the smallest covering span (keeps the first
    /// span's line/col).
    pub fn to(&self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compiler diagnostic with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub span: Span,
    pub message: String,
}

impl Diagnostic {
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers() {
        let a = Span::new(3, 7, 1, 4);
        let b = Span::new(10, 15, 2, 1);
        let m = a.to(b);
        assert_eq!(m.start, 3);
        assert_eq!(m.end, 15);
        assert_eq!(m.line, 1);
    }

    #[test]
    fn diagnostic_displays_location() {
        let d = Diagnostic::new(Span::new(0, 1, 3, 9), "unexpected token");
        assert_eq!(d.to_string(), "error at 3:9: unexpected token");
    }
}
