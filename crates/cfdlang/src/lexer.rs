//! Hand-written lexer for CFDlang.
//!
//! Comments run from `//` to end of line. Whitespace separates tokens.

use crate::diag::{Diagnostic, Span};
use crate::token::{Token, TokenKind};

/// Tokenize a full source string.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! span1 {
        ($start:expr, $len:expr, $l:expr, $c:expr) => {
            Span::new($start, $start + $len, $l, $c)
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' => {
                i += 1;
                col += 1;
            }
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b':' | b'=' | b'[' | b']' | b'(' | b')' | b'{' | b'}' | b'#' | b'*' | b'+' | b'-'
            | b'/' | b'.' => {
                let kind = match b {
                    b':' => TokenKind::Colon,
                    b'=' => TokenKind::Equals,
                    b'[' => TokenKind::LBracket,
                    b']' => TokenKind::RBracket,
                    b'(' => TokenKind::LParen,
                    b')' => TokenKind::RParen,
                    b'{' => TokenKind::LBrace,
                    b'}' => TokenKind::RBrace,
                    b'#' => TokenKind::Hash,
                    b'*' => TokenKind::Star,
                    b'+' => TokenKind::Plus,
                    b'-' => TokenKind::Minus,
                    b'/' => TokenKind::Slash,
                    b'.' => TokenKind::Dot,
                    _ => unreachable!(),
                };
                out.push(Token {
                    kind,
                    span: span1!(i, 1, line, col),
                });
                i += 1;
                col += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                let scol = col;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let text = &src[start..i];
                let value: u64 = text.parse().map_err(|_| {
                    Diagnostic::new(
                        span1!(start, i - start, line, scol),
                        format!("integer literal '{text}' out of range"),
                    )
                })?;
                out.push(Token {
                    kind: TokenKind::Int(value),
                    span: span1!(start, i - start, line, scol),
                });
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                let scol = col;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                    col += 1;
                }
                let text = &src[start..i];
                let kind = match text {
                    "var" => TokenKind::Var,
                    "input" => TokenKind::Input,
                    "output" => TokenKind::Output,
                    "type" => TokenKind::Type,
                    "kernel" => TokenKind::Kernel,
                    _ => TokenKind::Ident(text.to_string()),
                };
                out.push(Token {
                    kind,
                    span: span1!(start, i - start, line, scol),
                });
            }
            other => {
                return Err(Diagnostic::new(
                    span1!(i, 1, line, col),
                    format!("unexpected character '{}'", other as char),
                ));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(bytes.len(), bytes.len(), line, col),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_declaration() {
        assert_eq!(
            kinds("var input S : [11 11]"),
            vec![
                TokenKind::Var,
                TokenKind::Input,
                TokenKind::Ident("S".into()),
                TokenKind::Colon,
                TokenKind::LBracket,
                TokenKind::Int(11),
                TokenKind::Int(11),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_contraction_statement() {
        let ks = kinds("t = S # u . [[1 2]]");
        assert!(ks.contains(&TokenKind::Hash));
        assert!(ks.contains(&TokenKind::Dot));
        assert_eq!(ks.iter().filter(|k| **k == TokenKind::LBracket).count(), 2);
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("var x : [2] // trailing comment\n// full line\nx = x");
        assert!(!ks.iter().any(|k| matches!(k, TokenKind::Slash)));
        assert_eq!(
            ks.iter()
                .filter(|k| matches!(k, TokenKind::Ident(_)))
                .count(),
            3
        );
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("var x : [2]\nx = x").unwrap();
        let eq = toks.iter().find(|t| t.kind == TokenKind::Equals).unwrap();
        assert_eq!(eq.span.line, 2);
        assert_eq!(eq.span.col, 3);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("x = $").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn keywords_vs_identifiers() {
        let ks = kinds("var variable input inputs");
        assert_eq!(ks[0], TokenKind::Var);
        assert_eq!(ks[1], TokenKind::Ident("variable".into()));
        assert_eq!(ks[2], TokenKind::Input);
        assert_eq!(ks[3], TokenKind::Ident("inputs".into()));
    }
}
