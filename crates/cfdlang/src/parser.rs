//! Recursive-descent parser for CFDlang.
//!
//! Grammar (whitespace-separated):
//!
//! ```text
//! program   := (decl)* (stmt)*
//! decl      := 'var' ('input'|'output')? ident ':' type
//!            | 'type' ident ':' type
//! type      := '[' int* ']' | ident
//! stmt      := ident '=' expr
//! expr      := term (('+'|'-') term)*
//! term      := contract (('*'|'/') contract)*
//! contract  := product ('.' '[' pair* ']')*
//! product   := primary ('#' primary)*
//! primary   := ident | int | '(' expr ')'
//! pair      := '[' int int ']'
//! ```
//!
//! `.` (contraction) binds to the whole preceding `#`-product chain, so
//! `S # S # S # u . [[1 6] [3 7] [5 8]]` contracts the 9-dimensional
//! product, exactly as in Figure 1 of the paper.

use crate::ast::{BinOp, Decl, DeclKind, Expr, KernelDef, Program, ProgramSet, Stmt, TypeExpr};
use crate::diag::Diagnostic;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parse a single-kernel CFDlang source string into an AST.
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

/// Parse a (possibly multi-kernel) source into a [`ProgramSet`].
///
/// A source made of `kernel name { ... }` blocks yields one kernel per
/// block in declaration order; a plain declaration/statement source is
/// the degenerate case — a single kernel named `main`. Mixing the two
/// forms is an error.
pub fn parse_set(src: &str) -> Result<ProgramSet, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    if p.peek().kind != TokenKind::Kernel {
        return Ok(ProgramSet::single(p.program()?));
    }
    let mut kernels: Vec<KernelDef> = Vec::new();
    while p.peek().kind != TokenKind::Eof {
        let kw = p.eat(&TokenKind::Kernel)?;
        let (name, _) = p.eat_ident()?;
        if kernels.iter().any(|k| k.name == name) {
            return Err(Diagnostic::new(
                kw.span,
                format!("duplicate kernel '{name}'"),
            ));
        }
        p.eat(&TokenKind::LBrace)?;
        let program = p.block_program()?;
        p.eat(&TokenKind::RBrace)?;
        kernels.push(KernelDef {
            name,
            program,
            span: kw.span,
        });
    }
    Ok(ProgramSet { kernels })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> Result<Token, Diagnostic> {
        if &self.peek().kind == kind {
            Ok(self.next())
        } else {
            Err(Diagnostic::new(
                self.peek().span,
                format!("expected {kind}, found {}", self.peek().kind),
            ))
        }
    }

    fn eat_ident(&mut self) -> Result<(String, crate::diag::Span), Diagnostic> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let t = self.next();
                Ok((name, t.span))
            }
            other => Err(Diagnostic::new(
                self.peek().span,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn eat_int(&mut self) -> Result<u64, Diagnostic> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.next();
                Ok(v)
            }
            ref other => Err(Diagnostic::new(
                self.peek().span,
                format!("expected integer, found {other}"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut decls = Vec::new();
        let mut stmts = Vec::new();
        loop {
            match self.peek().kind {
                TokenKind::Var => decls.push(self.var_decl()?),
                TokenKind::Type => decls.push(self.type_decl()?),
                TokenKind::Ident(_) => stmts.push(self.stmt()?),
                TokenKind::Eof => break,
                ref other => {
                    return Err(Diagnostic::new(
                        self.peek().span,
                        format!("expected declaration or statement, found {other}"),
                    ))
                }
            }
        }
        Ok(Program { decls, stmts })
    }

    /// A program body inside a `kernel { ... }` block: stops at `}`.
    fn block_program(&mut self) -> Result<Program, Diagnostic> {
        let mut decls = Vec::new();
        let mut stmts = Vec::new();
        loop {
            match self.peek().kind {
                TokenKind::Var => decls.push(self.var_decl()?),
                TokenKind::Type => decls.push(self.type_decl()?),
                TokenKind::Ident(_) => stmts.push(self.stmt()?),
                TokenKind::RBrace | TokenKind::Eof => break,
                ref other => {
                    return Err(Diagnostic::new(
                        self.peek().span,
                        format!("expected declaration or statement, found {other}"),
                    ))
                }
            }
        }
        Ok(Program { decls, stmts })
    }

    fn var_decl(&mut self) -> Result<Decl, Diagnostic> {
        let var = self.eat(&TokenKind::Var)?;
        let kind = match self.peek().kind {
            TokenKind::Input => {
                self.next();
                DeclKind::Input
            }
            TokenKind::Output => {
                self.next();
                DeclKind::Output
            }
            _ => DeclKind::Local,
        };
        let (name, _) = self.eat_ident()?;
        self.eat(&TokenKind::Colon)?;
        let ty = self.type_expr()?;
        Ok(Decl::Var {
            kind,
            name,
            ty,
            span: var.span,
        })
    }

    fn type_decl(&mut self) -> Result<Decl, Diagnostic> {
        let kw = self.eat(&TokenKind::Type)?;
        let (name, _) = self.eat_ident()?;
        self.eat(&TokenKind::Colon)?;
        let ty = self.type_expr()?;
        Ok(Decl::TypeAlias {
            name,
            ty,
            span: kw.span,
        })
    }

    fn type_expr(&mut self) -> Result<TypeExpr, Diagnostic> {
        match self.peek().kind.clone() {
            TokenKind::LBracket => {
                self.next();
                let mut dims = Vec::new();
                while self.peek().kind != TokenKind::RBracket {
                    dims.push(self.eat_int()? as usize);
                }
                self.eat(&TokenKind::RBracket)?;
                Ok(TypeExpr::Shape(dims))
            }
            TokenKind::Ident(name) => {
                self.next();
                Ok(TypeExpr::Alias(name))
            }
            other => Err(Diagnostic::new(
                self.peek().span,
                format!("expected type (shape or alias), found {other}"),
            )),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let (lhs, span) = self.eat_ident()?;
        self.eat(&TokenKind::Equals)?;
        let rhs = self.expr()?;
        Ok(Stmt { lhs, rhs, span })
    }

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.term()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.contract()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.contract()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn contract(&mut self) -> Result<Expr, Diagnostic> {
        let mut e = self.product()?;
        while self.peek().kind == TokenKind::Dot {
            let dot = self.next();
            self.eat(&TokenKind::LBracket)?;
            let mut pairs = Vec::new();
            while self.peek().kind == TokenKind::LBracket {
                self.next();
                let a = self.eat_int()? as usize;
                let b = self.eat_int()? as usize;
                self.eat(&TokenKind::RBracket)?;
                pairs.push((a, b));
            }
            let close = self.eat(&TokenKind::RBracket)?;
            if pairs.is_empty() {
                return Err(Diagnostic::new(
                    dot.span,
                    "contraction requires at least one index pair",
                ));
            }
            let span = e.span().to(close.span);
            e = Expr::Contract {
                operand: Box::new(e),
                pairs,
                span,
            };
        }
        Ok(e)
    }

    fn product(&mut self) -> Result<Expr, Diagnostic> {
        let first = self.primary()?;
        let mut operands = vec![first];
        while self.peek().kind == TokenKind::Hash {
            self.next();
            operands.push(self.primary()?);
        }
        if operands.len() == 1 {
            Ok(operands.pop().expect("nonempty"))
        } else {
            let span = operands[0]
                .span()
                .to(operands.last().expect("nonempty").span());
            Ok(Expr::Product { operands, span })
        }
    }

    fn primary(&mut self) -> Result<Expr, Diagnostic> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let t = self.next();
                Ok(Expr::Ident(name, t.span))
            }
            TokenKind::Int(v) => {
                let t = self.next();
                Ok(Expr::Num(v as f64, t.span))
            }
            TokenKind::LParen => {
                self.next();
                let e = self.expr()?;
                self.eat(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(Diagnostic::new(
                self.peek().span,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Decl, DeclKind, Expr, TypeExpr};

    #[test]
    fn parse_inverse_helmholtz() {
        let src = crate::examples::inverse_helmholtz(11);
        let p = parse(&src).unwrap();
        assert_eq!(p.decls.len(), 6);
        assert_eq!(p.stmts.len(), 3);
        match &p.stmts[0].rhs {
            Expr::Contract { operand, pairs, .. } => {
                assert_eq!(pairs, &[(1, 6), (3, 7), (5, 8)]);
                match operand.as_ref() {
                    Expr::Product { operands, .. } => assert_eq!(operands.len(), 4),
                    other => panic!("expected product, got {other:?}"),
                }
            }
            other => panic!("expected contraction, got {other:?}"),
        }
    }

    #[test]
    fn parse_decl_kinds() {
        let p = parse("var input a : [2]\nvar output b : [2]\nvar c : [2]").unwrap();
        let kinds: Vec<DeclKind> = p
            .decls
            .iter()
            .map(|d| match d {
                Decl::Var { kind, .. } => *kind,
                _ => panic!(),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![DeclKind::Input, DeclKind::Output, DeclKind::Local]
        );
    }

    #[test]
    fn parse_type_alias() {
        let p = parse("type mat : [4 4]\nvar input A : mat").unwrap();
        match &p.decls[0] {
            Decl::TypeAlias { name, ty, .. } => {
                assert_eq!(name, "mat");
                assert_eq!(ty, &TypeExpr::Shape(vec![4, 4]));
            }
            other => panic!("expected alias, got {other:?}"),
        }
        match &p.decls[1] {
            Decl::Var { ty, .. } => assert_eq!(ty, &TypeExpr::Alias("mat".into())),
            other => panic!("expected var, got {other:?}"),
        }
    }

    #[test]
    fn hadamard_precedence() {
        // a * b + c parses as (a*b) + c
        let p = parse("var a : [2]\nvar b : [2]\nvar c : [2]\nvar o : [2]\no = a * b + c").unwrap();
        match &p.stmts[0].rhs {
            Expr::Binary {
                op: BinOp::Add,
                lhs,
                ..
            } => match lhs.as_ref() {
                Expr::Binary { op: BinOp::Mul, .. } => {}
                other => panic!("expected mul on lhs, got {other:?}"),
            },
            other => panic!("expected add at top, got {other:?}"),
        }
    }

    #[test]
    fn contraction_binds_to_product_chain() {
        let p = parse("var S : [2 2]\nvar u : [2]\nvar o : [2]\no = S # u . [[1 2]]").unwrap();
        match &p.stmts[0].rhs {
            Expr::Contract { operand, .. } => {
                assert!(matches!(operand.as_ref(), Expr::Product { .. }));
            }
            other => panic!("expected contract, got {other:?}"),
        }
    }

    #[test]
    fn parenthesized_expression() {
        let p = parse("var a : [2]\nvar b : [2]\nvar o : [2]\no = (a + b) * a").unwrap();
        match &p.stmts[0].rhs {
            Expr::Binary {
                op: BinOp::Mul,
                lhs,
                ..
            } => {
                assert!(matches!(lhs.as_ref(), Expr::Binary { op: BinOp::Add, .. }));
            }
            other => panic!("expected mul at top, got {other:?}"),
        }
    }

    #[test]
    fn error_on_missing_equals() {
        let err = parse("var a : [2]\na a").unwrap_err();
        assert!(err.message.contains("expected '='"), "{}", err.message);
    }

    #[test]
    fn error_on_empty_contraction() {
        let err = parse("var a : [2 2]\nvar o : []\no = a . []").unwrap_err();
        assert!(err.message.contains("at least one index pair"));
    }

    #[test]
    fn scalar_literal() {
        let p = parse("var a : [2]\nvar o : [2]\no = a * 2").unwrap();
        match &p.stmts[0].rhs {
            Expr::Binary { rhs, .. } => {
                assert!(matches!(rhs.as_ref(), Expr::Num(v, _) if *v == 2.0))
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
