//! Pretty printer: AST back to CFDlang surface syntax.

use crate::ast::{Decl, DeclKind, Expr, Program, ProgramSet, TypeExpr};
use std::fmt::Write;

/// Render a multi-kernel set as CFDlang source. The degenerate
/// single-kernel set named `main` (what a plain source parses to)
/// prints as a plain program without a `kernel` block, so
/// round-tripping a classic source stays the identity; a single kernel
/// with any other name keeps its block — dropping it would lose the
/// name and break `pretty_set ∘ parse_set` as an identity.
pub fn pretty_set(set: &ProgramSet) -> String {
    if !set.is_multi() && set.kernels.first().is_none_or(|k| k.name == "main") {
        return set
            .kernels
            .first()
            .map(|k| pretty(&k.program))
            .unwrap_or_default();
    }
    let mut out = String::new();
    for k in &set.kernels {
        let _ = writeln!(out, "kernel {} {{", k.name);
        for line in pretty(&k.program).lines() {
            let _ = writeln!(out, "\t{line}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Render a program as CFDlang source.
pub fn pretty(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        match d {
            Decl::Var { kind, name, ty, .. } => {
                let k = match kind {
                    DeclKind::Input => "input ",
                    DeclKind::Output => "output ",
                    DeclKind::Local => "",
                };
                let _ = writeln!(out, "var {k}{name} : {}", pretty_type(ty));
            }
            Decl::TypeAlias { name, ty, .. } => {
                let _ = writeln!(out, "type {name} : {}", pretty_type(ty));
            }
        }
    }
    for s in &p.stmts {
        let _ = writeln!(out, "{} = {}", s.lhs, pretty_expr(&s.rhs, 0));
    }
    out
}

fn pretty_type(ty: &TypeExpr) -> String {
    match ty {
        TypeExpr::Shape(dims) => {
            let inner: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
            format!("[{}]", inner.join(" "))
        }
        TypeExpr::Alias(name) => name.clone(),
    }
}

/// Precedence levels: 0 add, 1 mul, 2 contract, 3 product, 4 primary.
fn pretty_expr(e: &Expr, parent_prec: u8) -> String {
    let (text, prec) = match e {
        Expr::Ident(name, _) => (name.clone(), 4),
        Expr::Num(v, _) => (format!("{v}"), 4),
        Expr::Binary { op, lhs, rhs, .. } => {
            let prec = match op {
                crate::ast::BinOp::Add | crate::ast::BinOp::Sub => 0,
                crate::ast::BinOp::Mul | crate::ast::BinOp::Div => 1,
            };
            (
                format!(
                    "{} {} {}",
                    pretty_expr(lhs, prec),
                    op.dsl_symbol(),
                    pretty_expr(rhs, prec + 1)
                ),
                prec,
            )
        }
        Expr::Product { operands, .. } => {
            let parts: Vec<String> = operands.iter().map(|o| pretty_expr(o, 4)).collect();
            (parts.join(" # "), 3)
        }
        Expr::Contract { operand, pairs, .. } => {
            let ps: Vec<String> = pairs.iter().map(|(a, b)| format!("[{a} {b}]")).collect();
            (
                format!("{} . [{}]", pretty_expr(operand, 3), ps.join(" ")),
                2,
            )
        }
    };
    if prec < parent_prec {
        format!("({text})")
    } else {
        text
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    #[test]
    fn roundtrip_inverse_helmholtz() {
        let src = crate::examples::inverse_helmholtz(11);
        let p1 = parse(&src).unwrap();
        let printed = super::pretty(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1, p2, "pretty output must reparse to the same AST");
    }

    #[test]
    fn roundtrip_arithmetic() {
        let src = "var input a : [2]\nvar input b : [2]\nvar output o : [2]\no = (a + b) * a";
        let p1 = parse(src).unwrap();
        let p2 = parse(&super::pretty(&p1)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn roundtrip_alias() {
        let src = "type m : [3 3]\nvar input a : m\nvar output o : m\no = a + a";
        let p1 = parse(src).unwrap();
        let p2 = parse(&super::pretty(&p1)).unwrap();
        assert_eq!(p1, p2);
    }
}
