//! Abstract syntax tree for CFDlang programs.

use crate::diag::Span;

/// A full CFDlang program: declarations followed by assignment statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub decls: Vec<Decl>,
    pub stmts: Vec<Stmt>,
}

/// One `kernel name { ... }` block of a multi-kernel source.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    pub name: String,
    pub program: Program,
    pub span: Span,
}

/// A multi-kernel source: an ordered sequence of kernel declarations
/// that execute as one chained CFD step. A source without `kernel`
/// blocks parses as the degenerate single-kernel set (one kernel named
/// `main`). Kernels are linked by tensor name: an `input` of a later
/// kernel whose name matches an `output` of an earlier kernel receives
/// that kernel's result (the buffer handoff the host orchestrates).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSet {
    pub kernels: Vec<KernelDef>,
}

impl ProgramSet {
    /// Wrap a single program as the degenerate one-kernel set.
    pub fn single(program: Program) -> ProgramSet {
        ProgramSet {
            kernels: vec![KernelDef {
                name: "main".to_string(),
                program,
                span: Span::default(),
            }],
        }
    }

    /// Whether the source declared more than one kernel.
    pub fn is_multi(&self) -> bool {
        self.kernels.len() > 1
    }

    /// Kernel names in declaration (= execution) order.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.kernels.iter().map(|k| k.name.as_str()).collect()
    }

    /// Find a kernel by name.
    pub fn find_kernel(&self, name: &str) -> Option<&KernelDef> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// Storage class of a declared tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclKind {
    /// `var input x : [..]` — written by the host before execution.
    Input,
    /// `var output x : [..]` — read by the host after execution.
    Output,
    /// `var x : [..]` — kernel-local tensor.
    Local,
}

/// A tensor declaration or type alias.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `var [input|output] name : [d0 d1 ...]` or `var ... : alias`.
    Var {
        kind: DeclKind,
        name: String,
        ty: TypeExpr,
        span: Span,
    },
    /// `type name : [d0 d1 ...]`.
    TypeAlias {
        name: String,
        ty: TypeExpr,
        span: Span,
    },
}

/// A type expression: an explicit shape or a reference to an alias.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// `[d0 d1 ...]`; `[]` denotes a scalar.
    Shape(Vec<usize>),
    /// A previously declared `type` alias.
    Alias(String),
}

/// An assignment `name = expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub lhs: String,
    pub rhs: Expr,
    pub span: Span,
}

/// Entry-wise binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// The C99 operator spelling.
    pub fn c_symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }

    /// The DSL spelling.
    pub fn dsl_symbol(&self) -> &'static str {
        self.c_symbol()
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a declared tensor.
    Ident(String, Span),
    /// Integer literal used as a scalar.
    Num(f64, Span),
    /// Entry-wise binary operation (shapes must match).
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    /// Tensor (outer) product `a # b`; the result's dimensions are the
    /// concatenation of the operands' dimensions.
    Product { operands: Vec<Expr>, span: Span },
    /// Contraction `expr . [[a b] ...]`: sums over each paired dimension
    /// of the operand expression; the result keeps the remaining
    /// dimensions in their original order.
    Contract {
        operand: Box<Expr>,
        pairs: Vec<(usize, usize)>,
        span: Span,
    },
}

impl Expr {
    /// Source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Ident(_, s) | Expr::Num(_, s) => *s,
            Expr::Binary { span, .. }
            | Expr::Product { span, .. }
            | Expr::Contract { span, .. } => *span,
        }
    }

    /// Visit every identifier referenced by the expression.
    pub fn visit_idents<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expr::Ident(name, _) => f(name),
            Expr::Num(..) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_idents(f);
                rhs.visit_idents(f);
            }
            Expr::Product { operands, .. } => {
                for o in operands {
                    o.visit_idents(f);
                }
            }
            Expr::Contract { operand, .. } => operand.visit_idents(f),
        }
    }
}

impl Program {
    /// All identifiers read anywhere in the statements.
    pub fn read_idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.stmts {
            s.rhs.visit_idents(&mut |n| {
                if !out.iter().any(|o| o == n) {
                    out.push(n.to_string());
                }
            });
        }
        out
    }

    /// Find a variable declaration by name.
    pub fn find_var(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| match d {
            Decl::Var { name: n, .. } => n == name,
            Decl::TypeAlias { .. } => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_idents_collects_all() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Ident("D".into(), Span::default())),
            rhs: Box::new(Expr::Ident("t".into(), Span::default())),
            span: Span::default(),
        };
        let mut seen = Vec::new();
        e.visit_idents(&mut |n| seen.push(n.to_string()));
        assert_eq!(seen, vec!["D", "t"]);
    }

    #[test]
    fn binop_symbols() {
        assert_eq!(BinOp::Add.c_symbol(), "+");
        assert_eq!(BinOp::Div.dsl_symbol(), "/");
    }
}
