//! Semantic analysis: name resolution and shape checking.
//!
//! CFDlang tensors are statically shaped and non-aliasing (Section IV-B of
//! the paper), so the whole type system is shape inference plus a handful
//! of well-formedness rules:
//!
//! * every identifier must be declared before use,
//! * inputs may not be assigned; outputs must be assigned,
//! * each tensor is assigned at most once (pseudo-SSA),
//! * entry-wise operators require equal shapes (scalars broadcast),
//! * contraction pairs must reference distinct, in-range, equal-extent
//!   dimensions of the product expression.

use crate::ast::{Decl, DeclKind, Expr, Program, ProgramSet, Stmt, TypeExpr};
use crate::diag::Diagnostic;
use std::collections::HashMap;

/// Shape of a tensor value; `[]` is a scalar.
pub type Shape = Vec<usize>;

/// A checked program with resolved shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedProgram {
    pub program: Program,
    /// Resolved shape of every declared variable.
    pub shapes: HashMap<String, Shape>,
    /// Declaration kind of every variable.
    pub kinds: HashMap<String, DeclKind>,
    /// Inferred shape of every statement's RHS (same as the LHS shape).
    pub stmt_shapes: Vec<Shape>,
    /// Declaration order of the variables (stable interface order).
    pub order: Vec<String>,
}

impl TypedProgram {
    /// Shape of a declared variable.
    pub fn shape_of(&self, name: &str) -> Option<&[usize]> {
        self.shapes.get(name).map(|s| s.as_slice())
    }

    /// Kind of a declared variable.
    pub fn kind_of(&self, name: &str) -> Option<DeclKind> {
        self.kinds.get(name).copied()
    }

    /// Names of input tensors in declaration order.
    pub fn inputs(&self) -> Vec<&str> {
        self.order
            .iter()
            .filter(|n| self.kinds[*n] == DeclKind::Input)
            .map(String::as_str)
            .collect()
    }

    /// Names of output tensors in declaration order.
    pub fn outputs(&self) -> Vec<&str> {
        self.order
            .iter()
            .filter(|n| self.kinds[*n] == DeclKind::Output)
            .map(String::as_str)
            .collect()
    }

    /// Names of local (temporary) tensors in declaration order.
    pub fn locals(&self) -> Vec<&str> {
        self.order
            .iter()
            .filter(|n| self.kinds[*n] == DeclKind::Local)
            .map(String::as_str)
            .collect()
    }

    /// Total number of elements of a variable.
    pub fn volume_of(&self, name: &str) -> Option<usize> {
        self.shapes.get(name).map(|s| s.iter().product())
    }
}

/// One checked kernel of a multi-kernel program.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedKernel {
    pub name: String,
    pub typed: TypedProgram,
}

/// A cross-kernel tensor handoff: kernel `from`'s output `name` feeds
/// kernel `to`'s equally named input. Shapes are checked to match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorLink {
    pub name: String,
    /// Producing kernel (index into `TypedProgramSet::kernels`).
    pub from: usize,
    /// Consuming kernel.
    pub to: usize,
    pub shape: Shape,
}

/// A checked multi-kernel program with its resolved inter-kernel links.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedProgramSet {
    pub kernels: Vec<TypedKernel>,
    /// Handoffs in (from, to) order.
    pub links: Vec<TensorLink>,
}

impl TypedProgramSet {
    /// Kernel names in execution order.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.kernels.iter().map(|k| k.name.as_str()).collect()
    }

    /// Whether kernel `to`'s input `name` is fed by an earlier kernel.
    pub fn link_into(&self, to: usize, name: &str) -> Option<&TensorLink> {
        self.links.iter().find(|l| l.to == to && l.name == name)
    }

    /// External inputs the host must supply: `(kernel index, name)`
    /// pairs for every input not fed by an upstream kernel.
    pub fn external_inputs(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for (i, k) in self.kernels.iter().enumerate() {
            for n in k.typed.inputs() {
                if self.link_into(i, n).is_none() {
                    out.push((i, n.to_string()));
                }
            }
        }
        out
    }

    /// External outputs the host reads back: every kernel output is
    /// host-visible (handoffs are additionally forwarded in-fabric).
    pub fn external_outputs(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for (i, k) in self.kernels.iter().enumerate() {
            for n in k.typed.outputs() {
                // Outputs consumed by a later kernel stay in the fabric;
                // only final results travel back over DMA.
                let consumed = self.links.iter().any(|l| l.from == i && l.name == n);
                if !consumed {
                    out.push((i, n.to_string()));
                }
            }
        }
        out
    }
}

/// Check a multi-kernel set: each kernel individually, then the
/// cross-kernel links (name-matched output→input handoffs must agree on
/// shape; an input may only be fed by a *preceding* kernel).
pub fn check_set(set: &ProgramSet) -> Result<TypedProgramSet, Diagnostic> {
    let mut kernels = Vec::with_capacity(set.kernels.len());
    for k in &set.kernels {
        let typed = check(&k.program).map_err(|d| {
            Diagnostic::new(d.span, format!("in kernel '{}': {}", k.name, d.message))
        })?;
        kernels.push(TypedKernel {
            name: k.name.clone(),
            typed,
        });
    }
    let mut links = Vec::new();
    for (j, cons) in kernels.iter().enumerate() {
        for input in cons.typed.inputs() {
            // The most recent producer wins, mirroring dataflow order.
            let producer = kernels[..j]
                .iter()
                .enumerate()
                .rev()
                .find(|(_, p)| p.typed.outputs().contains(&input));
            if let Some((i, prod)) = producer {
                let ps = prod.typed.shape_of(input).expect("declared output");
                let cs = cons.typed.shape_of(input).expect("declared input");
                if ps != cs {
                    return Err(Diagnostic::new(
                        set.kernels[j].span,
                        format!(
                            "kernel '{}' output '{}' {:?} does not match kernel '{}' input {:?}",
                            prod.name, input, ps, cons.name, cs
                        ),
                    ));
                }
                links.push(TensorLink {
                    name: input.to_string(),
                    from: i,
                    to: j,
                    shape: ps.to_vec(),
                });
            }
        }
    }
    let typed_set = TypedProgramSet { kernels, links };
    // External input names are program-global (the host supplies one
    // tensor per name), so same-named external inputs of different
    // kernels must agree on shape.
    let externals = typed_set.external_inputs();
    for (a, (ki, name)) in externals.iter().enumerate() {
        let sa = typed_set.kernels[*ki].typed.shape_of(name).expect("input");
        for (kj, other) in &externals[a + 1..] {
            if other != name {
                continue;
            }
            let sb = typed_set.kernels[*kj].typed.shape_of(name).expect("input");
            if sa != sb {
                return Err(Diagnostic::new(
                    set.kernels[*kj].span,
                    format!(
                        "external input '{}' has shape {:?} in kernel '{}' but {:?} in kernel '{}'",
                        name, sa, typed_set.kernels[*ki].name, sb, typed_set.kernels[*kj].name
                    ),
                ));
            }
        }
    }
    Ok(typed_set)
}

/// Check a parsed program.
pub fn check(program: &Program) -> Result<TypedProgram, Diagnostic> {
    let mut aliases: HashMap<String, Shape> = HashMap::new();
    let mut shapes: HashMap<String, Shape> = HashMap::new();
    let mut kinds: HashMap<String, DeclKind> = HashMap::new();
    let mut order: Vec<String> = Vec::new();

    for d in &program.decls {
        match d {
            Decl::TypeAlias { name, ty, span } => {
                let shape = resolve_type(ty, &aliases).map_err(|m| Diagnostic::new(*span, m))?;
                if aliases.insert(name.clone(), shape).is_some() {
                    return Err(Diagnostic::new(
                        *span,
                        format!("duplicate type alias '{name}'"),
                    ));
                }
            }
            Decl::Var {
                kind,
                name,
                ty,
                span,
            } => {
                let shape = resolve_type(ty, &aliases).map_err(|m| Diagnostic::new(*span, m))?;
                if shape.contains(&0) {
                    return Err(Diagnostic::new(
                        *span,
                        format!("tensor '{name}' has a zero-extent dimension"),
                    ));
                }
                if shapes.insert(name.clone(), shape).is_some() {
                    return Err(Diagnostic::new(
                        *span,
                        format!("duplicate variable '{name}'"),
                    ));
                }
                kinds.insert(name.clone(), *kind);
                order.push(name.clone());
            }
        }
    }

    let mut assigned: HashMap<&str, bool> = HashMap::new();
    let mut stmt_shapes = Vec::with_capacity(program.stmts.len());
    for stmt in &program.stmts {
        let shape = check_stmt(stmt, &shapes, &kinds, &mut assigned)?;
        stmt_shapes.push(shape);
    }

    // Every output must be assigned.
    for (name, kind) in &kinds {
        if *kind == DeclKind::Output && !assigned.get(name.as_str()).copied().unwrap_or(false) {
            return Err(Diagnostic::new(
                Default::default(),
                format!("output '{name}' is never assigned"),
            ));
        }
    }

    Ok(TypedProgram {
        program: program.clone(),
        shapes,
        kinds,
        stmt_shapes,
        order,
    })
}

fn resolve_type(ty: &TypeExpr, aliases: &HashMap<String, Shape>) -> Result<Shape, String> {
    match ty {
        TypeExpr::Shape(dims) => Ok(dims.clone()),
        TypeExpr::Alias(name) => aliases
            .get(name)
            .cloned()
            .ok_or_else(|| format!("unknown type alias '{name}'")),
    }
}

fn check_stmt<'p>(
    stmt: &'p Stmt,
    shapes: &HashMap<String, Shape>,
    kinds: &HashMap<String, DeclKind>,
    assigned: &mut HashMap<&'p str, bool>,
) -> Result<Shape, Diagnostic> {
    let lhs_shape = shapes.get(&stmt.lhs).ok_or_else(|| {
        Diagnostic::new(
            stmt.span,
            format!("assignment to undeclared variable '{}'", stmt.lhs),
        )
    })?;
    match kinds[&stmt.lhs] {
        DeclKind::Input => {
            return Err(Diagnostic::new(
                stmt.span,
                format!("input '{}' may not be assigned", stmt.lhs),
            ))
        }
        DeclKind::Output | DeclKind::Local => {}
    }
    if assigned.insert(stmt.lhs.as_str(), true) == Some(true) {
        return Err(Diagnostic::new(
            stmt.span,
            format!("variable '{}' assigned more than once", stmt.lhs),
        ));
    }
    let rhs_shape = infer(&stmt.rhs, shapes)?;
    if &rhs_shape != lhs_shape {
        return Err(Diagnostic::new(
            stmt.span,
            format!(
                "shape mismatch in assignment to '{}': lhs {:?}, rhs {:?}",
                stmt.lhs, lhs_shape, rhs_shape
            ),
        ));
    }
    Ok(rhs_shape)
}

/// Infer the shape of an expression.
pub fn infer(expr: &Expr, shapes: &HashMap<String, Shape>) -> Result<Shape, Diagnostic> {
    match expr {
        Expr::Ident(name, span) => shapes
            .get(name)
            .cloned()
            .ok_or_else(|| Diagnostic::new(*span, format!("use of undeclared variable '{name}'"))),
        Expr::Num(..) => Ok(vec![]),
        Expr::Binary { op, lhs, rhs, span } => {
            let l = infer(lhs, shapes)?;
            let r = infer(rhs, shapes)?;
            // Scalars broadcast against any shape.
            if l.is_empty() {
                Ok(r)
            } else if r.is_empty() || l == r {
                Ok(l)
            } else {
                Err(Diagnostic::new(
                    *span,
                    format!(
                        "entry-wise '{}' on mismatched shapes {:?} and {:?}",
                        op.dsl_symbol(),
                        l,
                        r
                    ),
                ))
            }
        }
        Expr::Product { operands, .. } => {
            let mut shape = Vec::new();
            for o in operands {
                shape.extend(infer(o, shapes)?);
            }
            Ok(shape)
        }
        Expr::Contract {
            operand,
            pairs,
            span,
        } => {
            let inner = infer(operand, shapes)?;
            let rank = inner.len();
            let mut contracted = vec![false; rank];
            for &(a, b) in pairs {
                if a >= rank || b >= rank {
                    return Err(Diagnostic::new(
                        *span,
                        format!(
                            "contraction pair [{a} {b}] out of range for rank-{rank} expression"
                        ),
                    ));
                }
                if a == b {
                    return Err(Diagnostic::new(
                        *span,
                        format!("contraction pair [{a} {b}] repeats a dimension"),
                    ));
                }
                if contracted[a] || contracted[b] {
                    return Err(Diagnostic::new(
                        *span,
                        format!("dimension in pair [{a} {b}] contracted twice"),
                    ));
                }
                if inner[a] != inner[b] {
                    return Err(Diagnostic::new(
                        *span,
                        format!(
                            "contracted dimensions have different extents: dim {a} is {}, dim {b} is {}",
                            inner[a], inner[b]
                        ),
                    ));
                }
                contracted[a] = true;
                contracted[b] = true;
            }
            Ok(inner
                .iter()
                .enumerate()
                .filter(|(i, _)| !contracted[*i])
                .map(|(_, &d)| d)
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<TypedProgram, Diagnostic> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn helmholtz_type_checks() {
        let t = check_src(&crate::examples::inverse_helmholtz(11)).unwrap();
        assert_eq!(t.shape_of("S"), Some(&[11, 11][..]));
        assert_eq!(t.shape_of("v"), Some(&[11, 11, 11][..]));
        assert_eq!(t.inputs(), vec!["S", "D", "u"]);
        assert_eq!(t.outputs(), vec!["v"]);
        assert_eq!(t.locals(), vec!["t", "r"]);
        assert_eq!(t.volume_of("u"), Some(1331));
    }

    #[test]
    fn contraction_shape_drops_pairs() {
        let t = check_src(
            "var input S : [3 3]\nvar input u : [3]\nvar output o : [3]\no = S # u . [[1 2]]",
        )
        .unwrap();
        assert_eq!(t.stmt_shapes[0], vec![3]);
    }

    #[test]
    fn rejects_undeclared_use() {
        let e = check_src("var output o : [2]\no = x").unwrap_err();
        assert!(e.message.contains("undeclared variable 'x'"));
    }

    #[test]
    fn rejects_assignment_to_input() {
        let e = check_src("var input a : [2]\na = a").unwrap_err();
        assert!(e.message.contains("may not be assigned"));
    }

    #[test]
    fn rejects_double_assignment() {
        let e = check_src("var input a : [2]\nvar output o : [2]\no = a\no = a").unwrap_err();
        assert!(e.message.contains("assigned more than once"));
    }

    #[test]
    fn rejects_unassigned_output() {
        let e = check_src("var input a : [2]\nvar output o : [2]").unwrap_err();
        assert!(e.message.contains("never assigned"));
    }

    #[test]
    fn rejects_shape_mismatch_entrywise() {
        let e = check_src("var input a : [2]\nvar input b : [3]\nvar output o : [2]\no = a * b")
            .unwrap_err();
        assert!(e.message.contains("mismatched shapes"));
    }

    #[test]
    fn rejects_mismatched_contraction_extents() {
        let e = check_src(
            "var input S : [2 3]\nvar input u : [2]\nvar output o : [2]\no = S # u . [[1 2]]",
        )
        .unwrap_err();
        assert!(e.message.contains("different extents"));
    }

    #[test]
    fn rejects_out_of_range_pair() {
        let e = check_src("var input S : [2 2]\nvar output o : []\no = S . [[0 7]]").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn rejects_dimension_contracted_twice() {
        let e = check_src("var input T : [2 2 2 2]\nvar output o : []\no = T . [[0 1] [1 2]]")
            .unwrap_err();
        assert!(e.message.contains("contracted twice") || e.message.contains("repeats"));
    }

    #[test]
    fn scalar_broadcast() {
        let t = check_src("var input a : [4]\nvar output o : [4]\no = a * 2").unwrap();
        assert_eq!(t.stmt_shapes[0], vec![4]);
    }

    #[test]
    fn rejects_zero_extent() {
        let e = check_src("var input a : [0]\nvar output o : []\no = a . [[0 0]]").unwrap_err();
        assert!(e.message.contains("zero-extent"));
    }

    #[test]
    fn rejects_conflicting_external_input_shapes() {
        // x is an external input to both kernels with different shapes:
        // the host cannot supply one tensor under that name.
        let src = "kernel a { var input x : [4]\nvar output u : [4]\nu = x + x }\n\
                   kernel b { var input x : [5]\nvar input u : [4]\nvar output o : [5]\no = x * 2 }";
        let e = crate::check_set(&crate::parse_set(src).unwrap()).unwrap_err();
        assert!(e.message.contains("external input 'x'"), "{}", e.message);
        assert!(
            e.span != crate::Span::default(),
            "diagnostic carries a span"
        );
    }

    #[test]
    fn handoff_shape_mismatch_carries_span() {
        let src = "kernel a { var input x : [4]\nvar output u : [4]\nu = x + x }\n\
                   kernel b { var input u : [5]\nvar output o : [5]\no = u * 2 }";
        let e = crate::check_set(&crate::parse_set(src).unwrap()).unwrap_err();
        assert!(e.message.contains("does not match"), "{}", e.message);
        assert!(e.span != crate::Span::default());
    }

    #[test]
    fn type_alias_resolves() {
        let t =
            check_src("type vec : [5]\nvar input a : vec\nvar output o : vec\no = a + a").unwrap();
        assert_eq!(t.shape_of("a"), Some(&[5][..]));
    }
}
