//! `cfdlang` — frontend for the CFDlang tensor DSL.
//!
//! CFDlang [Rink et al., RWDSL'18] is a small declarative language for the
//! tensor operations that dominate spectral-element CFD solvers. This
//! crate implements the complete frontend used by the DSL-to-FPGA flow:
//! lexer, parser, AST, semantic (shape) analysis and a pretty printer.
//!
//! The paper's running example, the Inverse Helmholtz operator of
//! polynomial degree `p = 11` (Figure 1), looks like this:
//!
//! ```text
//! var input  S : [11 11]
//! var input  D : [11 11 11]
//! var input  u : [11 11 11]
//! var output v : [11 11 11]
//! var t : [11 11 11]
//! var r : [11 11 11]
//! t = S # S # S # u . [[1 6] [3 7] [5 8]]
//! r = D * t
//! v = S # S # S # r . [[0 6] [2 7] [4 8]]
//! ```
//!
//! * `#` is the tensor (outer) product; the dimensions of `S # S # S # u`
//!   are numbered 0–8,
//! * `expr . [[a b] ...]` contracts (sums over) the paired dimensions,
//! * `*` is the entry-wise (Hadamard) product; `+`, `-`, `/` are the other
//!   entry-wise operators.
//!
//! # Quick start
//!
//! ```
//! let src = cfdlang::examples::inverse_helmholtz(11);
//! let program = cfdlang::parse(&src).expect("parses");
//! let typed = cfdlang::check(&program).expect("type checks");
//! assert_eq!(typed.shape_of("t"), Some(&vec![11usize, 11, 11][..]));
//! ```
//!
//! # Multi-kernel programs
//!
//! A source may group several kernels into one program with
//! `kernel name { ... }` blocks; [`parse_set`] / [`check_set`] resolve
//! the name-matched output→input handoffs between them (a full CFD
//! time-step is such a chain — see [`examples::simulation_step`]). A
//! plain source is the degenerate single-kernel set.
//!
//! ```
//! let src = cfdlang::examples::simulation_step(4);
//! let set = cfdlang::check_set(&cfdlang::parse_set(&src).unwrap()).unwrap();
//! assert_eq!(set.kernels.len(), 3);
//! assert_eq!(set.links.len(), 2); // u and v hand off between kernels
//! ```

pub mod ast;
pub mod diag;
pub mod examples;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;

pub use ast::{BinOp, Decl, DeclKind, Expr, KernelDef, Program, ProgramSet, Stmt};
pub use diag::{Diagnostic, Span};
pub use parser::{parse, parse_set};
pub use pretty::{pretty, pretty_set};
pub use sema::{check, check_set, TensorLink, TypedKernel, TypedProgram, TypedProgramSet};
