//! Round-trip property: `pretty_set → parse_set → check_set` is an
//! identity on generated multi-kernel programs.
//!
//! The generator builds random-but-valid `ProgramSet`s (1–3 kernels,
//! random extents, pointwise or contraction bodies, chained through
//! name-matched handoffs) directly as ASTs. For each one:
//!
//! 1. `pretty_set` must produce source that `parse_set` accepts,
//! 2. pretty-printing the parsed set must reproduce the text exactly
//!    (the printer is a fixpoint of its own output),
//! 3. re-parsing that text must reproduce the parsed AST exactly
//!    (including spans — identical text, identical positions), and
//! 4. `check_set` must accept it, preserving kernel names and resolving
//!    every chained handoff.
//!
//! The proptest shim draws from a fixed per-test seed, so runs are
//! reproducible.

use cfdlang::ast::TypeExpr;
use cfdlang::{check_set, parse_set, pretty_set};
use cfdlang::{BinOp, Decl, DeclKind, Expr, KernelDef, Program, ProgramSet, Stmt};
use proptest::prelude::*;

/// Span-free convenience constructors (the printer ignores spans; the
/// identity is asserted on the *parsed* ASTs, whose spans line up
/// because the compared texts are identical).
fn span() -> cfdlang::Span {
    cfdlang::Span::default()
}

fn var(kind: DeclKind, name: &str, shape: &[usize]) -> Decl {
    Decl::Var {
        kind,
        name: name.to_string(),
        ty: TypeExpr::Shape(shape.to_vec()),
        span: span(),
    }
}

fn ident(name: &str) -> Expr {
    Expr::Ident(name.to_string(), span())
}

/// One kernel of the chain: consumes `input` (shape `[e e]`), produces
/// `output` of the same shape. `op == 0` is the pointwise template
/// `out = a * in + in`; otherwise the sandwich contraction
/// `out = S # in . [[1 2]]`.
fn gen_kernel(name: &str, input: &str, output: &str, e: usize, op: usize) -> KernelDef {
    let shape = [e, e];
    let mut decls = Vec::new();
    // Handoff inputs are still declared `input` in the consumer kernel —
    // the linker matches them by name.
    decls.push(var(DeclKind::Input, input, &shape));
    let stmt = if op == 0 {
        let scale = format!("a_{name}");
        decls.push(var(DeclKind::Input, &scale, &[]));
        decls.push(var(DeclKind::Output, output, &shape));
        Stmt {
            lhs: output.to_string(),
            rhs: Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::Binary {
                    op: BinOp::Mul,
                    lhs: Box::new(ident(&scale)),
                    rhs: Box::new(ident(input)),
                    span: span(),
                }),
                rhs: Box::new(ident(input)),
                span: span(),
            },
            span: span(),
        }
    } else {
        let s = format!("S_{name}");
        decls.push(var(DeclKind::Input, &s, &shape));
        decls.push(var(DeclKind::Output, output, &shape));
        Stmt {
            lhs: output.to_string(),
            rhs: Expr::Contract {
                operand: Box::new(Expr::Product {
                    operands: vec![ident(&s), ident(input)],
                    span: span(),
                }),
                pairs: vec![(1, 2)],
                span: span(),
            },
            span: span(),
        }
    };
    KernelDef {
        name: name.to_string(),
        program: Program {
            decls,
            stmts: vec![stmt],
        },
        span: span(),
    }
}

/// A chained program of `kernels` kernels with extent `e`, kernel `i`
/// consuming kernel `i-1`'s output.
fn gen_program(kernels: usize, e: usize, ops: &[usize]) -> ProgramSet {
    let defs = (0..kernels)
        .map(|i| {
            let name = format!("k{i}");
            let input = if i == 0 {
                "x0".to_string()
            } else {
                format!("w{}", i - 1)
            };
            gen_kernel(&name, &input, &format!("w{i}"), e, ops[i % ops.len()])
        })
        .collect();
    ProgramSet { kernels: defs }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pretty_parse_check_is_identity(
        kernels in 1usize..4,
        e in 2usize..5,
        ops in proptest::collection::vec(0usize..2, 3),
    ) {
        let set = gen_program(kernels, e, &ops);

        // 1. pretty output parses.
        let s0 = pretty_set(&set);
        let parsed = parse_set(&s0).unwrap_or_else(|d| panic!("unparsable pretty output:\n{s0}\n{d}"));
        prop_assert_eq!(parsed.kernels.len(), kernels);

        // 2. the printer is a fixpoint of its own output.
        let s1 = pretty_set(&parsed);
        prop_assert_eq!(&s1, &s0);

        // 3. reparsing identical text reproduces the AST exactly
        //    (spans included).
        let reparsed = parse_set(&s1).unwrap();
        prop_assert_eq!(&reparsed, &parsed);

        // 4. the checker accepts it and resolves the chain.
        let typed = check_set(&parsed).unwrap_or_else(|d| panic!("check_set rejected:\n{s0}\n{d}"));
        let names: Vec<String> = (0..kernels).map(|i| format!("k{i}")).collect();
        prop_assert_eq!(typed.kernel_names(), names.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for i in 1..kernels {
            let handoff = format!("w{}", i - 1);
            prop_assert!(
                typed.link_into(i, &handoff).is_some(),
                "handoff '{}' into kernel {} not resolved", handoff, i
            );
        }
        // x0 stays an external input of the whole program.
        prop_assert!(typed.external_inputs().iter().any(|(_, n)| n == "x0"));
    }
}

#[test]
fn named_single_kernel_block_round_trips() {
    // Regression: `pretty_set` used to drop the block (and with it the
    // kernel's name) for single-kernel sets, so `kernel solo { ... }`
    // came back as an anonymous `main` program.
    let src = "kernel solo {\n\tvar input x : [2 2]\n\tvar output y : [2 2]\n\ty = x + x\n}\n";
    let parsed = parse_set(src).unwrap();
    assert_eq!(parsed.kernel_names(), vec!["solo"]);
    let printed = pretty_set(&parsed);
    assert_eq!(printed, src);
    assert_eq!(parse_set(&printed).unwrap(), parsed);
}

#[test]
fn plain_source_still_prints_without_a_block() {
    // The degenerate `main` set (what a classic source parses to) keeps
    // printing as a plain program.
    let src = cfdlang::examples::inverse_helmholtz(3);
    let parsed = parse_set(&src).unwrap();
    assert_eq!(parsed.kernel_names(), vec!["main"]);
    let printed = pretty_set(&parsed);
    assert!(!printed.contains("kernel "));
    assert_eq!(parse_set(&printed).unwrap().kernel_names(), vec!["main"]);
}
