//! Quickstart: compile a small CFDlang kernel through the complete
//! DSL-to-FPGA flow and inspect every artifact.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cfdfpga::flow::{Flow, FlowOptions};

fn main() {
    // A 2-D "matrix sandwich" o = Sᵀ A S — two chained contractions.
    let source = cfdfpga::cfdlang::examples::matrix_sandwich(8);
    println!("--- CFDlang source ---\n{source}");

    let artifacts = Flow::compile(&source, &FlowOptions::default()).expect("flow");

    println!("--- tensor IR (after canonicalization) ---");
    println!("{}", artifacts.module);

    println!("--- generated C99 kernel (input to HLS) ---");
    println!("{}", artifacts.c_source);

    println!("--- HLS report ---");
    println!("{}", artifacts.hls_report);

    println!("--- memory subsystem ---");
    for u in &artifacts.memory.units {
        println!(
            "  {}: {} words, {} BRAM36, {}R{}W",
            u.name, u.words, u.brams, u.read_ports, u.write_ports
        );
    }
    println!("  total: {} BRAMs", artifacts.memory.brams);

    if let Some(sys) = &artifacts.system {
        println!("\n--- system (largest k = m that fits the ZCU106) ---");
        println!(
            "  k = {}, m = {}: {} LUT, {} FF, {} DSP, {} BRAM",
            sys.config.k, sys.config.m, sys.luts, sys.ffs, sys.dsps, sys.brams
        );
    }

    // Functional check: the simulated accelerator against the reference
    // interpreter.
    let v = artifacts.verify(4, 2024).expect("verification runs");
    println!(
        "\nverified {} random elements: bitexact = {}, max rel diff = {:.1e}",
        v.elements, v.bitexact, v.max_rel_diff
    );
    assert!(v.bitexact);
}
