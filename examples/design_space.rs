//! Design-space exploration: sweep the polynomial degree p and, for each
//! kernel, run the parallel DSE engine over the (k, batch, sharing,
//! decoupling) grid on the ZCU106 — the exploration loop the DSL flow
//! makes cheap (the paper's Section I: "simplifies the exploration of
//! parameters and constraints such as on-chip memory usage").
//!
//! Per degree, the frontend/middle end/scheduler run exactly once; the
//! grid points share those stages and evaluate concurrently.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use cfdfpga::flow::dse::{DseEngine, DseGrid};
use cfdfpga::flow::FlowOptions;

fn main() {
    let elements = 10_000;
    println!("Inverse Helmholtz on ZCU106, {elements} elements:\n");
    println!("   p   grid  feasible   best (k, m, sharing)     el/s   shared / sweep");
    for p in [3usize, 5, 7, 9, 11, 13] {
        let src = cfdfpga::cfdlang::examples::inverse_helmholtz(p);
        let engine = DseEngine::prepare(&src, &FlowOptions::default()).expect("flow");
        let report = engine.run(&DseGrid::default(), 0, elements);
        let counts = report.counts;
        assert_eq!(
            (counts.frontend, counts.middle_end),
            (1, 1),
            "shared stages must compile once"
        );
        match report.best() {
            Some(best) => println!(
                "  {:>2}   {:>4}  {:>8}   k={:<2} m={:<3} sharing={:<5}  {:>7.0}   {:.3} s / {:.3} s",
                p,
                report.evaluated,
                report.feasible,
                best.point.k,
                best.point.m,
                best.point.sharing,
                best.throughput_eps,
                report.shared.total_s(),
                report.wall_s,
            ),
            None => println!("  {p:>2}   {:>4}         0   (nothing fits)", report.evaluated),
        }
    }

    println!("\nSmaller p shrinks the PLM footprint faster than the logic,");
    println!("so the replication limit shifts from BRAM-bound to LUT-bound.");
}
