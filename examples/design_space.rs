//! Design-space exploration: sweep the polynomial degree p and list, for
//! each kernel, every feasible (k, m) replication on the ZCU106 — the
//! exploration loop the DSL flow makes cheap (the paper's Section I:
//! "simplifies the exploration of parameters and constraints such as
//! on-chip memory usage").
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use cfdfpga::flow::{Flow, FlowOptions};
use cfdfpga::sysgen::{enumerate_configs, BoardSpec};

fn main() {
    let board = BoardSpec::zcu106();
    println!("Inverse Helmholtz on {}:\n", board.name);
    println!("   p   kernel LUT/DSP    PLM BRAM   feasible (k, m) configurations");
    for p in [3usize, 5, 7, 9, 11, 13] {
        let src = cfdfpga::cfdlang::examples::inverse_helmholtz(p);
        let art = Flow::compile(&src, &FlowOptions::default()).expect("flow");
        let configs = enumerate_configs(&board, &art.hls_report, &art.memory);
        let equal: Vec<String> = configs
            .iter()
            .filter(|c| c.k == c.m)
            .map(|c| format!("{}", c.k))
            .collect();
        let batched = configs.iter().filter(|c| c.k != c.m).count();
        println!(
            "  {:>2}     {:>5} / {:<3}      {:>5}      k=m ∈ {{{}}} (+{} batched)",
            p,
            art.hls_report.luts,
            art.hls_report.dsps,
            art.memory.brams,
            equal.join(", "),
            batched,
        );
    }

    println!("\nSmaller p shrinks the PLM footprint faster than the logic,");
    println!("so the replication limit shifts from BRAM-bound to LUT-bound.");
}
