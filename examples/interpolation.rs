//! Tensor-product interpolation — the "simpler operator subsumed by the
//! Inverse Helmholtz" of Section II-A. Evaluates a degree-n spectral
//! element on an m-point grid per direction and explores how the
//! operator shape drives the hardware: latency, resources and the
//! replication the board admits.
//!
//! ```sh
//! cargo run --release --example interpolation
//! ```

use cfdfpga::flow::{Flow, FlowOptions};

fn main() {
    println!("o = (P ⊗ P ⊗ P) u : interpolate degree-n elements to m points\n");
    println!("   n -> m    kernel cycles   LUT    DSP   PLM BRAM   max k=m");
    for (n, m) in [(4usize, 8usize), (8, 8), (8, 12), (11, 11), (11, 16)] {
        let src = cfdfpga::cfdlang::examples::interpolation(n, m);
        let art = Flow::compile(&src, &FlowOptions::default()).expect("flow");
        let k_max = art.system.as_ref().map(|s| s.config.k).unwrap_or(0);
        println!(
            "  {:>2} -> {:>2}    {:>10}   {:>5}   {:>3}   {:>6}      {:>3}",
            n,
            m,
            art.hls_report.latency_cycles,
            art.hls_report.luts,
            art.hls_report.dsps,
            art.memory.brams,
            k_max,
        );
        // Every configuration must stay functionally correct.
        let v = art.verify(2, (n * 100 + m) as u64).expect("verify");
        assert!(v.bitexact, "n={n} m={m}");
    }

    println!("\nThe factorized interpolation runs three staged contractions,");
    println!("so latency grows with max(n, m)^4 rather than (n m)^3.");
}
