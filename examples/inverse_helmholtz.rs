//! The paper's evaluation workflow end to end: compile the Inverse
//! Helmholtz operator (p = 11), build the largest system that fits the
//! ZCU106, simulate a 50,000-element CFD run, and compare against ARM
//! software execution — Figures 9 and 10 of the paper.
//!
//! ```sh
//! cargo run --release --example inverse_helmholtz
//! ```

use cfdfpga::flow::{Flow, FlowOptions};
use cfdfpga::mnemosyne::MemoryOptions;
use cfdfpga::sysgen::{HostProgram, Platform, SystemConfig, SystemDesign};
use cfdfpga::zynq::{ArmCostModel, SimConfig};

const ELEMENTS: usize = 50_000;

fn main() {
    let source = cfdfpga::cfdlang::examples::inverse_helmholtz(11);
    println!(
        "Inverse Helmholtz operator, p = 11 — {} DSL lines\n",
        source.lines().count()
    );

    // Compile twice: with and without liveness-based memory sharing.
    let with_sharing = Flow::compile(&source, &FlowOptions::default()).expect("flow");
    let no_sharing = Flow::compile(
        &source,
        &FlowOptions {
            memory: MemoryOptions {
                sharing: false,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("flow");

    println!(
        "kernel: {} LUT, {} FF, {} DSP @ {} MHz, latency {:.2} ms",
        with_sharing.hls_report.luts,
        with_sharing.hls_report.ffs,
        with_sharing.hls_report.dsps,
        with_sharing.hls_report.clock_mhz,
        with_sharing.hls_report.latency_seconds() * 1e3,
    );
    println!(
        "PLM per kernel: {} BRAMs without sharing, {} with sharing",
        no_sharing.memory.brams, with_sharing.memory.brams
    );
    let k_max_no = no_sharing.system.as_ref().map(|s| s.config.k).unwrap_or(0);
    let k_max_sh = with_sharing
        .system
        .as_ref()
        .map(|s| s.config.k)
        .unwrap_or(0);
    println!("max parallel kernels: {k_max_no} -> {k_max_sh} (the paper's 8 -> 16)\n");

    // Figure 9: scale k = m and report speedups.
    let platform = Platform::zcu106();
    let simulate = |k: usize| {
        let cfg = SystemConfig { k, m: k };
        let host = HostProgram::from_kernel(&with_sharing.kernel, cfg);
        let d = SystemDesign::build(
            &platform,
            &with_sharing.hls_report,
            &with_sharing.memory,
            cfg,
            host,
        )
        .expect("fits");
        cfdfpga::zynq::simulate_hw(
            &d,
            &SimConfig {
                elements: ELEMENTS,
                ..Default::default()
            },
        )
    };
    let base = simulate(1);
    println!("{} elements on the simulated ZCU106:", ELEMENTS);
    println!("  m=k    exec speedup   total speedup   total time");
    for k in [1usize, 2, 4, 8, 16] {
        let r = simulate(k);
        println!(
            "  {:>3}       {:>6.2}         {:>6.2}        {:>8.2} s",
            k,
            base.exec_s / r.exec_s,
            base.total_s / r.total_s,
            r.total_s
        );
    }

    // Figure 10: against the platform's host CPU (the ZCU106's A53).
    let model = ArmCostModel::from_platform(&platform);
    let sw = cfdfpga::zynq::sim::sw_reference(&with_sharing.module, &model, ELEMENTS).expect("sw");
    println!(
        "\nARM A53 (1.2 GHz) software reference: {:.2} s total",
        sw.total_s
    );
    for k in [1usize, 8, 16] {
        let r = simulate(k);
        println!(
            "  HW k = {:<2} speedup vs ARM: {:.2}x",
            k,
            sw.total_s / r.total_s
        );
    }

    // Functional validation of the accelerator datapath.
    let v = with_sharing.verify(4, 7).expect("verify");
    println!(
        "\nfunctional check: {} elements, bitexact = {}",
        v.elements, v.bitexact
    );
    assert!(v.bitexact);
}
