//! `cfdfpga` — umbrella crate for the CFDlang-to-FPGA reproduction.
//!
//! This crate re-exports the public APIs of every subsystem so that
//! examples, integration tests and downstream users can depend on a single
//! package. See the `cfd-core` crate ([`flow`]) for the end-to-end
//! staged compiler/synthesis/simulation pipeline and the design-space
//! exploration engine, and `README.md` at the repository root for the
//! quickstart and crate map.

pub use cfd_core as flow;
pub use cfdlang;
pub use cgen;
pub use hls;
pub use mnemosyne;
pub use polyhedra;
pub use pschedule;
pub use sysgen;
pub use teil;
pub use zynq;
