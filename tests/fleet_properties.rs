//! Property-based differential tests of fleet serving.
//!
//! Random kernels, request streams and routing policies are pushed
//! through `runtime::serve_fleet` and checked against the single-board
//! runtime and the reference interpreter:
//!
//! * **Fleet-of-1 identity** — a fleet with one healthy board is
//!   tick-identical AND byte-identical (report, JSON, outputs) to a
//!   plain `runtime::serve` run, under every routing policy.
//! * **Parallel ≡ serial** — the scoped-thread board fan-out produces
//!   a bit-identical `FleetReport` and identical outputs to the serial
//!   board loop, under every routing policy.
//! * **Outage conservation** — when one board dies and never recovers,
//!   every drained request is requeued on a survivor exactly once:
//!   nothing is lost, nothing is served twice, and the per-board
//!   rescued-in/rescued-out books balance.
//! * **Functional identity** — completed outputs are bit-exact against
//!   the chained reference interpreter for every request, under every
//!   routing policy; routing shares hardware, never data.

use cfd_core::program::{ProgramFlow, ProgramOptions};
use proptest::prelude::*;
use runtime::{
    generate_requests, generate_timing_requests, serve, serve_fleet, Arrival, BatchPolicy,
    FleetBoard, FleetOptions, RoutePolicy, RuntimeOptions,
};
use sysgen::Platform;
use teil::ir::Module;
use zynq::des::secs;
use zynq::fault::{FaultPlan, Outage};

/// The generated-kernel pool the properties draw from (same pool as
/// `runtime_differential`): small enough that every case compiles and
/// serves in milliseconds.
fn source_for(choice: usize, size: usize) -> String {
    match choice % 5 {
        0 => cfdlang::examples::axpy(2 + size),
        1 => cfdlang::examples::matrix_sandwich(2 + size),
        2 => cfdlang::examples::inverse_helmholtz(2 + size),
        3 => cfdlang::examples::axpy_chain(2 + size),
        _ => cfdlang::examples::simulation_step(2 + size),
    }
}

const ROUTES: [RoutePolicy; 3] = [
    RoutePolicy::RoundRobin,
    RoutePolicy::ShortestQueue,
    RoutePolicy::Predictive,
];

struct Compiled {
    art: cfd_core::ProgramArtifacts,
}

impl Compiled {
    /// Compile for one named catalog platform (`None` = default board).
    fn new(source: &str, platform: Option<&str>) -> Compiled {
        let mut opts = ProgramOptions::default();
        if let Some(name) = platform {
            let p = Platform::by_name(name).expect("catalog platform");
            opts.flow.hls.clock_mhz = p.default_clock_mhz;
            opts.flow.platform = p;
        }
        Compiled {
            art: ProgramFlow::compile(source, &opts).expect("test kernel compiles"),
        }
    }

    fn modules(&self) -> Vec<&Module> {
        self.art.kernels.iter().map(|a| &*a.module).collect()
    }

    fn kernels(&self) -> Vec<&cgen::CKernel> {
        self.art.kernels.iter().map(|a| &a.kernel).collect()
    }

    fn design(&self) -> sysgen::MultiSystemDesign {
        self.art.system.clone().expect("system fits the board")
    }
}

/// A heterogeneous three-board fleet: the same program compiled for
/// three different catalog platforms (distinct clocks and capacities,
/// so routing decisions actually differ).
fn boards_het(source: &str) -> (Compiled, Vec<FleetBoard>) {
    let main = Compiled::new(source, Some("zcu106"));
    let small = Compiled::new(source, Some("pynq-z2"));
    let mid = Compiled::new(source, Some("zc706"));
    let boards = vec![
        FleetBoard::healthy(main.design()),
        FleetBoard::healthy(small.design()),
        FleetBoard::healthy(mid.design()),
    ];
    (main, boards)
}

fn fleet_opts(route: RoutePolicy, base: RuntimeOptions) -> FleetOptions {
    FleetOptions {
        route,
        parallel: true,
        base,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A fleet of one healthy board IS `runtime::serve`: same report
    /// ticks, same JSON bytes, same output tensors — whatever the
    /// routing policy (with one board every policy picks board 0).
    #[test]
    fn fleet_of_one_is_serve_tick_and_byte_identical(
        choice in 0usize..5,
        size in 0usize..2,
        n in 2usize..6,
        overlap in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let src = source_for(choice, size);
        let c = Compiled::new(&src, None);
        let modules = c.modules();
        let kernels = c.kernels();
        let requests = generate_requests(&modules, n, &Arrival::Closed, seed).unwrap();
        let base = RuntimeOptions {
            requests: n,
            batch: BatchPolicy::Auto,
            overlap_dma: overlap,
            execute: true,
            seed,
            ..Default::default()
        };
        let solo = serve(&c.design(), &c.art.names, &modules, &kernels, &requests, &base).unwrap();
        for route in ROUTES {
            let fleet = serve_fleet(
                &[FleetBoard::healthy(c.design())],
                &c.art.names,
                &modules,
                &kernels,
                &requests,
                &fleet_opts(route, base.clone()),
            )
            .unwrap();
            let br = fleet.report.boards[0].report.as_ref().unwrap();
            prop_assert_eq!(br, &solo.report, "route {}: report diverged", route.label());
            prop_assert_eq!(br.to_json(), solo.report.to_json());
            prop_assert_eq!(fleet.report.makespan_ticks, solo.report.makespan_ticks);
            prop_assert_eq!(fleet.outputs.len(), solo.outputs.len());
            for (i, (a, b)) in fleet.outputs.iter().zip(&solo.outputs).enumerate() {
                prop_assert_eq!(a.len(), b.len());
                for (key, tensor) in a {
                    let other = &b[key];
                    prop_assert_eq!(tensor.len(), other.len());
                    for (x, y) in tensor.iter().zip(other) {
                        prop_assert!(
                            x.to_bits() == y.to_bits(),
                            "request {} output '{}' not bit-identical under {}",
                            i, key, route.label()
                        );
                    }
                }
            }
        }
    }

    /// The scoped-thread board fan-out is bit-identical to the serial
    /// board loop: same `FleetReport` (modulo the `parallel` flag),
    /// same assignment, same outputs — under every routing policy, on
    /// a heterogeneous fleet.
    #[test]
    fn parallel_fleet_is_bit_identical_to_serial(
        choice in 0usize..5,
        n in 4usize..10,
        rate_idx in 0usize..2,
        seed in 0u64..1_000,
    ) {
        let src = source_for(choice, 0);
        let (main, boards) = boards_het(&src);
        let arrival = if rate_idx == 0 {
            Arrival::Closed
        } else {
            Arrival::Poisson { rate_rps: 5.0e4 }
        };
        let requests = generate_timing_requests(n, &arrival, seed).unwrap();
        let base = RuntimeOptions {
            requests: n,
            batch: BatchPolicy::Auto,
            overlap_dma: false,
            execute: false,
            seed,
            ..Default::default()
        };
        for route in ROUTES {
            let serial = serve_fleet(
                &boards, &main.art.names, &[], &[], &requests,
                &FleetOptions { parallel: false, ..fleet_opts(route, base.clone()) },
            )
            .unwrap();
            let par = serve_fleet(
                &boards, &main.art.names, &[], &[], &requests,
                &fleet_opts(route, base.clone()),
            )
            .unwrap();
            let mut par_report = par.report.clone();
            par_report.parallel = false;
            prop_assert_eq!(&serial.report, &par_report, "route {}", route.label());
            prop_assert_eq!(serial.report.to_json(), par_report.to_json());
            prop_assert_eq!(serial.outputs, par.outputs);
        }
    }

    /// One board dies and never recovers: every request it had queued
    /// is requeued onto a survivor exactly once. Request counts are
    /// conserved (completed = n, nothing shed, no duplicate ids) and
    /// the per-board rescue books balance — under jsq, predictive and
    /// round-robin alike.
    #[test]
    fn outage_drain_conserves_request_counts(
        choice in 0usize..5,
        n in 12usize..24,
        dead in 0usize..3,
        fail_us in 50u64..500,
        seed in 0u64..1_000,
    ) {
        let src = source_for(choice, 0);
        let (main, mut boards) = boards_het(&src);
        boards[dead].faults = FaultPlan {
            seed,
            outage: Some(Outage {
                fail_at: secs(fail_us as f64 * 1e-6),
                recover_at: None,
            }),
            ..FaultPlan::none()
        };
        let requests = generate_timing_requests(n, &Arrival::Closed, seed).unwrap();
        let base = RuntimeOptions {
            requests: n,
            batch: BatchPolicy::Auto,
            overlap_dma: false,
            execute: false,
            seed,
            ..Default::default()
        };
        for route in ROUTES {
            let fleet = serve_fleet(
                &boards, &main.art.names, &[], &[], &requests,
                &fleet_opts(route, base.clone()),
            )
            .unwrap()
            .report;
            // Conservation: everything completes somewhere, nothing is
            // shed, and the outcome counters sum to n.
            prop_assert_eq!(fleet.completed, n, "route {}", route.label());
            prop_assert_eq!(fleet.shed, 0);
            prop_assert_eq!(
                fleet.completed + fleet.timed_out + fleet.shed + fleet.failed,
                n
            );
            // Every id is placed on exactly one board.
            prop_assert_eq!(fleet.assignment.len(), n);
            let mut ids: Vec<usize> = fleet.assignment.iter().map(|(id, _)| *id).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), n, "route {}: duplicate placement", route.label());
            // The rescue books balance: what left the dead board landed
            // on survivors, and assigned-minus-kept equals requeued.
            let kept = fleet.assignment.iter().filter(|(_, b)| *b == dead).count();
            prop_assert_eq!(kept + fleet.requeued, fleet.boards[dead].assigned);
            prop_assert_eq!(fleet.boards[dead].rescued_out, fleet.requeued);
            let rescued_in: usize = fleet.boards.iter().map(|b| b.rescued_in).sum();
            prop_assert_eq!(rescued_in, fleet.requeued);
            prop_assert_eq!(fleet.boards[dead].rescued_in, 0);
        }
    }

    /// Completed outputs are bit-exact against the chained reference
    /// interpreter for every request under every routing policy on a
    /// heterogeneous fleet: the dispatcher moves work, never data.
    #[test]
    fn fleet_outputs_bit_exact_vs_reference_under_every_policy(
        choice in 0usize..5,
        size in 0usize..2,
        n in 3usize..7,
        seed in 0u64..1_000,
    ) {
        let src = source_for(choice, size);
        let (main, boards) = boards_het(&src);
        let modules = main.modules();
        let kernels = main.kernels();
        let requests = generate_requests(&modules, n, &Arrival::Closed, seed).unwrap();
        let base = RuntimeOptions {
            requests: n,
            batch: BatchPolicy::Auto,
            overlap_dma: false,
            execute: true,
            seed,
            ..Default::default()
        };
        for route in ROUTES {
            let fleet = serve_fleet(
                &boards, &main.art.names, &modules, &kernels, &requests,
                &fleet_opts(route, base.clone()),
            )
            .unwrap();
            prop_assert_eq!(fleet.outputs.len(), n);
            for (req, got) in requests.iter().zip(&fleet.outputs) {
                let reference =
                    zynq::run_program_reference(&main.art.names, &modules, &req.inputs).unwrap();
                prop_assert_eq!(reference.len(), got.len());
                for (key, tensor) in &reference {
                    let g = &got[key];
                    prop_assert_eq!(tensor.data.len(), g.len());
                    for (a, b) in tensor.data.iter().zip(g) {
                        prop_assert!(
                            a.to_bits() == b.to_bits(),
                            "request {} output '{}' diverged under {}",
                            req.id, key, route.label()
                        );
                    }
                }
            }
        }
    }
}
