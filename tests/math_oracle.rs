//! Independent mathematical oracle: Equations (1a)–(1c) of the paper
//! implemented directly as nested loops, compared against the complete
//! flow (DSL → IR → factorization → scheduling → generated code). This
//! guards against systematic errors shared between the interpreter and
//! the code generator, since the oracle shares no code with either.

use cfdfpga::flow::{Flow, FlowOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Direct evaluation of the Inverse Helmholtz operator:
///   t_ijk = Σ_lmn Sᵀ_li Sᵀ_mj Sᵀ_nk u_lmn   (1a)
///   r_ijk = D_ijk · t_ijk                    (1b)
///   v_ijk = Σ_lmn S_li S_mj S_nk r_lmn       (1c)
fn oracle_inverse_helmholtz(n: usize, s: &[f64], d: &[f64], u: &[f64]) -> Vec<f64> {
    let at2 = |m: &[f64], a: usize, b: usize| m[a * n + b];
    let at3 = |m: &[f64], a: usize, b: usize, c: usize| m[(a * n + b) * n + c];
    let mut t = vec![0.0f64; n * n * n];
    let mut idx = 0;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let mut acc = 0.0;
                for l in 0..n {
                    for m in 0..n {
                        for q in 0..n {
                            // Sᵀ_li = S_il etc. (Figure 1 pairs [1 6][3 7][5 8])
                            acc += at2(s, i, l) * at2(s, j, m) * at2(s, k, q) * at3(u, l, m, q);
                        }
                    }
                }
                t[idx] = acc;
                idx += 1;
            }
        }
    }
    let r: Vec<f64> = t.iter().zip(d).map(|(a, b)| a * b).collect();
    let mut v = vec![0.0f64; n * n * n];
    idx = 0;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let mut acc = 0.0;
                for l in 0..n {
                    for m in 0..n {
                        for q in 0..n {
                            // Pairs [0 6][2 7][4 8]: S_li S_mj S_qk.
                            acc += at2(s, l, i) * at2(s, m, j) * at2(s, q, k) * at3(&r, l, m, q);
                        }
                    }
                }
                v[idx] = acc;
                idx += 1;
            }
        }
    }
    v
}

fn rand_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn run_flow_kernel(art: &cfdfpga::flow::Artifacts, inputs: &[(&str, Vec<f64>)]) -> Vec<f64> {
    let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
    for p in &art.kernel.params {
        mem.insert(p.name.clone(), vec![0.0; p.words]);
    }
    for (name, data) in inputs {
        mem.insert(name.to_string(), data.clone());
    }
    cgen::run_kernel(&art.kernel, &mut mem).expect("kernel runs");
    mem.remove("v").or_else(|| mem.remove("o")).expect("output")
}

fn max_rel(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0, f64::max)
}

#[test]
fn flow_matches_oracle_for_helmholtz() {
    let mut rng = StdRng::seed_from_u64(0xCFD);
    for n in [2usize, 3, 5, 7] {
        let src = cfdfpga::cfdlang::examples::inverse_helmholtz(n);
        for factorize in [false, true] {
            let art = Flow::compile(
                &src,
                &FlowOptions {
                    factorize,
                    ..Default::default()
                },
            )
            .unwrap();
            let s = rand_vec(&mut rng, n * n);
            let d = rand_vec(&mut rng, n * n * n);
            let u = rand_vec(&mut rng, n * n * n);
            let expect = oracle_inverse_helmholtz(n, &s, &d, &u);
            let got = run_flow_kernel(
                &art,
                &[("S", s.clone()), ("D", d.clone()), ("u", u.clone())],
            );
            let diff = max_rel(&expect, &got);
            assert!(
                diff < 1e-10,
                "n={n} factorize={factorize}: max rel diff {diff}"
            );
        }
    }
}

#[test]
fn identity_operator_is_identity_through_the_flow() {
    // With S = I and D = 1, the operator must return u exactly.
    let n = 6usize;
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(n);
    let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
    let mut s = vec![0.0f64; n * n];
    for i in 0..n {
        s[i * n + i] = 1.0;
    }
    let d = vec![1.0f64; n * n * n];
    let mut rng = StdRng::seed_from_u64(7);
    let u = rand_vec(&mut rng, n * n * n);
    let got = run_flow_kernel(&art, &[("S", s), ("D", d), ("u", u.clone())]);
    assert_eq!(got, u, "identity operator must be exact");
}

#[test]
fn scaling_linearity_through_the_flow() {
    // The operator is linear in u: f(α·u) = α·f(u).
    let n = 4usize;
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(n);
    let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let s = rand_vec(&mut rng, n * n);
    let d = rand_vec(&mut rng, n * n * n);
    let u = rand_vec(&mut rng, n * n * n);
    let alpha = 3.0f64;
    let ua: Vec<f64> = u.iter().map(|x| alpha * x).collect();
    let f1 = run_flow_kernel(&art, &[("S", s.clone()), ("D", d.clone()), ("u", u)]);
    let f2 = run_flow_kernel(&art, &[("S", s), ("D", d), ("u", ua)]);
    let scaled: Vec<f64> = f1.iter().map(|x| alpha * x).collect();
    assert!(max_rel(&scaled, &f2) < 1e-12);
}

#[test]
fn interpolation_matches_direct_tensor_product() {
    // o_abc = Σ_lmn P_al P_bm P_cn u_lmn.
    let (n, m) = (4usize, 6usize);
    let src = cfdfpga::cfdlang::examples::interpolation(n, m);
    let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(1234);
    let p = rand_vec(&mut rng, m * n);
    let u = rand_vec(&mut rng, n * n * n);
    let got = run_flow_kernel(&art, &[("P", p.clone()), ("u", u.clone())]);
    let mut expect = vec![0.0f64; m * m * m];
    for a in 0..m {
        for b in 0..m {
            for c in 0..m {
                let mut acc = 0.0;
                for l in 0..n {
                    for mm in 0..n {
                        for q in 0..n {
                            acc += p[a * n + l]
                                * p[b * n + mm]
                                * p[c * n + q]
                                * u[(l * n + mm) * n + q];
                        }
                    }
                }
                expect[(a * m + b) * m + c] = acc;
            }
        }
    }
    assert!(max_rel(&expect, &got) < 1e-10);
}
