//! Acceptance gate for multi-kernel programs: compiling a program must
//! be *conservative* per kernel — with cross-kernel sharing disabled,
//! every per-kernel artifact and every simulated tensor is bit-identical
//! to compiling that kernel alone — while the program level adds the
//! shared system: cross-kernel PLM co-location under one BRAM budget,
//! one multi-accelerator design, and chained end-to-end simulation.

use cfdfpga::flow::dse::{DseGrid, ProgramDseEngine};
use cfdfpga::flow::program::{ProgramFlow, ProgramOptions};
use cfdfpga::flow::{Flow, FlowOptions};
use cfdfpga::sysgen::ProgramSystemConfig;
use cfdfpga::zynq::SimConfig;
use std::collections::HashMap;

/// Split a program source into per-kernel single sources.
fn kernel_sources(src: &str) -> Vec<(String, String)> {
    let set = cfdfpga::cfdlang::parse_set(src).unwrap();
    set.kernels
        .iter()
        .map(|k| (k.name.clone(), cfdfpga::cfdlang::pretty(&k.program)))
        .collect()
}

/// The tentpole identity: program compile (no cross-kernel sharing)
/// vs. sequential single-kernel compiles — bit-identical artifacts and
/// bit-identical simulated tensors.
#[test]
fn program_without_sharing_is_bit_identical_to_sequential_compiles() {
    for src in [
        cfdfpga::cfdlang::examples::simulation_step(4),
        cfdfpga::cfdlang::examples::axpy_chain(3),
    ] {
        let popts = ProgramOptions {
            cross_sharing: false,
            ..Default::default()
        };
        let prog = ProgramFlow::compile(&src, &popts).unwrap();

        let mut per_kernel_brams = 0usize;
        let mut singles = Vec::new();
        for ((name, ksrc), part) in kernel_sources(&src).iter().zip(&prog.kernels) {
            let kopts = FlowOptions {
                system: None,
                ..FlowOptions::default()
            };
            let solo = Flow::compile(ksrc, &kopts).unwrap();
            // Bit-identical per-kernel artifacts across every layer.
            assert_eq!(part.module, solo.module, "module of '{name}'");
            assert_eq!(part.schedule, solo.schedule, "schedule of '{name}'");
            assert_eq!(part.kernel, solo.kernel, "loop program of '{name}'");
            assert_eq!(part.c_source, solo.c_source, "C source of '{name}'");
            assert_eq!(part.hls_report, solo.hls_report, "HLS report of '{name}'");
            assert_eq!(
                part.mnemosyne_config, solo.mnemosyne_config,
                "mnemosyne config of '{name}'"
            );
            assert_eq!(part.memory, solo.memory, "memory subsystem of '{name}'");
            per_kernel_brams += solo.memory.brams;
            singles.push(solo);
        }

        // The unshared program memory is the exact concatenation.
        assert_eq!(prog.memory.brams, per_kernel_brams);
        assert_eq!(prog.memory_plan.cross_edges, 0);

        // Simulated tensors: the chained program must equal feeding the
        // separately compiled kernels by hand, bit for bit.
        let modules: Vec<&cfdfpga::teil::Module> =
            prog.kernels.iter().map(|a| &*a.module).collect();
        let prog_kernels: Vec<&cfdfpga::cgen::CKernel> =
            prog.kernels.iter().map(|a| &a.kernel).collect();
        let external = cfdfpga::zynq::random_program_inputs(&modules, 2024);
        let chained =
            cfdfpga::zynq::run_program_chain(&prog.names, &modules, &prog_kernels, &external)
                .unwrap();
        // Manual chain over the *independently compiled* kernels.
        let mut produced: HashMap<String, Vec<f64>> = HashMap::new();
        for (name, solo) in prog.names.iter().zip(&singles) {
            let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
            for p in &solo.kernel.params {
                mem.insert(p.name.clone(), vec![0.0; p.words]);
            }
            for id in solo.module.of_kind(cfdfpga::teil::TensorKind::Input) {
                let n = solo.module.name(id);
                let data = produced
                    .get(n)
                    .cloned()
                    .unwrap_or_else(|| external[n].data.clone());
                mem.insert(n.to_string(), data);
            }
            cfdfpga::cgen::run_kernel(&solo.kernel, &mut mem).unwrap();
            for id in solo.module.of_kind(cfdfpga::teil::TensorKind::Output) {
                let n = solo.module.name(id);
                let v = mem[n].clone();
                let got = &chained[&format!("{name}.{n}")];
                assert_eq!(got, &v, "simulated tensor '{name}.{n}' diverged");
                produced.insert(n.to_string(), v);
            }
        }
        // And the chain is bit-exact against the reference interpreter.
        assert!(prog.verify(2, 7).unwrap().bitexact);
    }
}

/// The acceptance scenario: a multi-kernel program compiles through the
/// pipeline into a single system with cross-kernel PLM sharing enabled,
/// and simulates end-to-end.
#[test]
fn simulation_step_single_system_with_cross_sharing() {
    let src = cfdfpga::cfdlang::examples::simulation_step(4);
    let art = ProgramFlow::compile(&src, &ProgramOptions::default()).unwrap();
    assert_eq!(art.kernel_count(), 3);
    // Cross-kernel sharing strictly beats the concatenated budget and
    // the sharing solution stays valid.
    assert!(art.memory_plan.cross_edges > 0);
    assert!(
        art.memory.brams < art.per_kernel_plm_brams(),
        "{} vs {}",
        art.memory.brams,
        art.per_kernel_plm_brams()
    );
    let sol = cfdfpga::mnemosyne::share_groups(&art.memory_plan.config, false);
    sol.validate(&art.memory_plan.config, false).unwrap();
    assert!(art.memory_plan.cross_kernel_units(&art.memory) > 0);
    // One system for the whole solver, within the board budget.
    let sys = art.system.as_ref().expect("program fits the ZCU106");
    assert_eq!(sys.stages.len(), 3);
    let (l, f, d, b) = sys.slack();
    assert!(l >= 0 && f >= 0 && d >= 0 && b >= 0);
    // End-to-end chained simulation, per-stage accounting intact.
    let r = art
        .simulate(&SimConfig {
            elements: 128,
            ..Default::default()
        })
        .unwrap();
    assert_eq!(r.stage_exec_s.len(), 3);
    assert!(r.exec_s > 0.0 && r.total_s > r.exec_s);
    assert!((r.exec_s - r.stage_exec_s.iter().sum::<f64>()).abs() < 1e-12);
    // The host interface dropped the handoff traffic.
    assert_eq!(sys.host.handoff_bytes_per_element, 2 * 64 * 8);
}

/// Joint design-space exploration: shared stages run once per kernel,
/// backends memoize on (kernel, backend key), and rows carry the
/// program label.
#[test]
fn joint_program_sweep_memoizes_per_kernel_backends() {
    let src = cfdfpga::cfdlang::examples::simulation_step(4);
    let engine = ProgramDseEngine::prepare(&src, &ProgramOptions::default()).unwrap();
    let report = engine.run(&DseGrid::default(), 4, 1_000);
    assert_eq!(report.evaluated, 32);
    let c = report.counts;
    assert_eq!(c.frontend, 1, "one program frontend pass");
    assert_eq!(c.middle_end, 3, "one middle end per kernel");
    assert_eq!(c.schedule, 3);
    assert_eq!(c.link, 1, "one cross-kernel link stage");
    // 4 backend keys × 3 kernels.
    assert_eq!(report.backend_compiles, 12);
    assert_eq!(c.backend, 12);
    assert_eq!(report.backend_reuses, (32 - 4) * 3);
    // Rows are labelled by kernel names, not bare grid indices.
    for o in &report.outcomes {
        assert_eq!(o.kernel, "interpolate+inverse_helmholtz+project");
    }
    let json = report.to_json();
    assert!(json.contains("\"kernel\": \"interpolate+inverse_helmholtz+project\""));
    assert!(report.render_table().contains("kernel"));
    // Sharing axis reaches the merged program memory.
    let find = |sharing: bool| {
        report
            .outcomes
            .iter()
            .find(|o| {
                o.point.k == 1 && o.point.m == 1 && o.point.decoupled && o.point.sharing == sharing
            })
            .expect("grid covers sharing at k=m=1")
    };
    assert!(find(true).plm_brams < find(false).plm_brams);
    assert!(report.best().is_some());
}

/// A requested program configuration that exceeds the union budget must
/// error, and per-stage replication is honored when it fits.
#[test]
fn program_system_configuration_control() {
    let src = cfdfpga::cfdlang::examples::axpy_chain(3);
    let opts = ProgramOptions {
        system: Some(ProgramSystemConfig {
            ks: vec![2, 4],
            m: 4,
        }),
        ..Default::default()
    };
    let art = ProgramFlow::compile(&src, &opts).unwrap();
    let sys = art.system.as_ref().unwrap();
    assert_eq!(sys.config.ks, vec![2, 4]);
    assert_eq!(sys.stages[0].k, 2);
    assert_eq!(sys.stages[1].k, 4);
    let r = art
        .simulate(&SimConfig {
            elements: 64,
            ..Default::default()
        })
        .unwrap();
    // Stage 0 at k=2 runs twice the batches of stage 1 at k=4.
    assert!(r.stage_exec_s[0] > r.stage_exec_s[1]);

    let too_big = ProgramOptions {
        system: Some(ProgramSystemConfig::uniform(64, 64, 2)),
        ..Default::default()
    };
    assert!(matches!(
        ProgramFlow::compile(&src, &too_big),
        Err(cfdfpga::flow::FlowError::DoesNotFit { .. })
    ));
}
