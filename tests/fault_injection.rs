//! Property-based fault-injection suite for the fault-tolerant runtime.
//!
//! Four obligations, mirrored from the differential contract of the
//! deterministic `FaultPlan`:
//!
//! * **Fault-free identity** — an empty plan leaves `serve` on the
//!   clean scheduler, and even when the fault-aware loop is *forced*
//!   (via a deadline that can never fire) the tick schedule and the
//!   output bytes are identical to the clean path.
//! * **Completed bit-exactness** — under random fault plans, every
//!   request that reports `Completed` produces outputs bit-identical
//!   to the reference interpreter; retries share hardware, never data.
//!   Requests that did not complete produce nothing.
//! * **Deterministic replay** — the same `(seed, plan, policy)` yields
//!   a byte-identical JSON report, run after run.
//! * **Retry cap** — no request is ever attempted more than
//!   `max_retries + 1` times, and a `Failed` request used exactly its
//!   full allowance.

use cfd_core::program::{ProgramFlow, ProgramOptions};
use proptest::prelude::*;
use runtime::{
    generate_requests, serve, Arrival, BatchPolicy, RecoveryPolicy, RequestOutcome, RuntimeOptions,
};
use zynq::FaultPlan;

/// Generated-kernel pool: same shapes as the runtime differential
/// suite, sized to compile and execute in milliseconds.
fn source_for(choice: usize, size: usize) -> String {
    match choice % 5 {
        0 => cfdlang::examples::axpy(2 + size),
        1 => cfdlang::examples::matrix_sandwich(2 + size),
        2 => cfdlang::examples::inverse_helmholtz(2 + size),
        3 => cfdlang::examples::axpy_chain(2 + size),
        _ => cfdlang::examples::simulation_step(2 + size),
    }
}

struct Compiled {
    art: cfd_core::ProgramArtifacts,
}

impl Compiled {
    fn new(source: &str) -> Compiled {
        Compiled {
            art: ProgramFlow::compile(source, &ProgramOptions::default())
                .expect("test kernel compiles"),
        }
    }

    fn modules(&self) -> Vec<&teil::ir::Module> {
        self.art.kernels.iter().map(|a| &*a.module).collect()
    }

    fn kernels(&self) -> Vec<&cgen::CKernel> {
        self.art.kernels.iter().map(|a| &a.kernel).collect()
    }

    fn system(&self) -> &sysgen::MultiSystemDesign {
        self.art.system.as_ref().expect("system fits zcu106")
    }
}

fn batch_for(policy: usize) -> BatchPolicy {
    match policy % 3 {
        0 => BatchPolicy::Auto,
        1 => BatchPolicy::Fixed(2),
        _ => BatchPolicy::Disabled,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fault-free identity, the hard way: a deadline too large to ever
    /// fire forces the fault-aware scheduler (no fast-forward, per-round
    /// fault draws — all of them `false`), yet ticks, traces and output
    /// bytes must match the clean dispatch exactly.
    #[test]
    fn forced_fault_loop_without_faults_is_tick_and_byte_identical(
        choice in 0usize..5,
        size in 0usize..2,
        n in 2usize..6,
        policy in 0usize..3,
        overlap in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let src = source_for(choice, size);
        let c = Compiled::new(&src);
        let modules = c.modules();
        let kernels = c.kernels();
        let requests = generate_requests(&modules, n, &Arrival::Closed, seed).unwrap();
        let base = RuntimeOptions {
            requests: n,
            batch: batch_for(policy),
            overlap_dma: overlap,
            execute: true,
            seed,
            ..Default::default()
        };
        let clean = serve(c.system(), &c.art.names, &modules, &kernels, &requests, &base).unwrap();
        let forced = serve(c.system(), &c.art.names, &modules, &kernels, &requests, &RuntimeOptions {
            recovery: RecoveryPolicy {
                deadline_s: Some(1.0e6), // ~1e18 ticks: unreachable
                ..RecoveryPolicy::default()
            },
            ..base.clone()
        }).unwrap();
        let (a, b) = (&clean.report, &forced.report);
        // The clean path may fast-forward closed backlogs; the forced
        // loop never does. Everything else is tick-identical.
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.exec_ticks, b.exec_ticks);
        prop_assert_eq!(a.transfer_ticks, b.transfer_ticks);
        prop_assert_eq!(a.overlapped_ticks, b.overlapped_ticks);
        prop_assert_eq!(a.makespan_ticks, b.makespan_ticks);
        prop_assert_eq!(b.fast_forwarded_rounds, 0);
        for (ta, tb) in a.traces.iter().zip(&b.traces) {
            prop_assert_eq!(ta.id, tb.id);
            prop_assert_eq!(ta.completed_s.to_bits(), tb.completed_s.to_bits());
            prop_assert_eq!(tb.outcome, RequestOutcome::Completed);
            prop_assert_eq!(tb.attempts, 1);
        }
        // And the functional outputs are the same bytes.
        prop_assert_eq!(clean.outputs.len(), forced.outputs.len());
        for (oa, ob) in clean.outputs.iter().zip(&forced.outputs) {
            prop_assert_eq!(oa.len(), ob.len());
            for (key, va) in oa {
                let vb = &ob[key];
                prop_assert_eq!(va.len(), vb.len());
                for (x, y) in va.iter().zip(vb) {
                    prop_assert!(x.to_bits() == y.to_bits(), "output '{}' diverged", key);
                }
            }
        }
    }

    /// Random fault plans never change the bytes of completed work:
    /// every `Completed` request matches the reference interpreter bit
    /// for bit, however many retries it took; everything else produced
    /// no output at all.
    #[test]
    fn completed_requests_stay_bit_exact_under_random_plans(
        choice in 0usize..5,
        size in 0usize..2,
        n in 2usize..6,
        policy in 0usize..3,
        overlap in proptest::bool::ANY,
        seed in 0u64..1_000,
        transient_pct in 0u32..40,
        stall_pct in 0u32..40,
        corrupt_pct in 0u32..25,
    ) {
        let src = source_for(choice, size);
        let c = Compiled::new(&src);
        let modules = c.modules();
        let kernels = c.kernels();
        let requests = generate_requests(&modules, n, &Arrival::Closed, seed).unwrap();
        let plan = FaultPlan {
            seed: seed ^ 0x5eed,
            transient_rate: transient_pct as f64 / 100.0,
            stall_rate: stall_pct as f64 / 100.0,
            corrupt_rate: corrupt_pct as f64 / 100.0,
            outage: None,
        };
        let opts = RuntimeOptions {
            requests: n,
            batch: batch_for(policy),
            overlap_dma: overlap,
            execute: true,
            seed,
            faults: plan,
            recovery: RecoveryPolicy {
                max_retries: 16,
                ..RecoveryPolicy::default()
            },
            ..Default::default()
        };
        let served = serve(c.system(), &c.art.names, &modules, &kernels, &requests, &opts).unwrap();
        prop_assert_eq!(served.outputs.len(), n);
        for (req, got) in requests.iter().zip(&served.outputs) {
            let trace = served.report.traces.iter().find(|t| t.id == req.id).unwrap();
            if trace.outcome != RequestOutcome::Completed {
                prop_assert!(got.is_empty(), "non-completed request {} has outputs", req.id);
                continue;
            }
            let reference = zynq::run_program_reference(&c.art.names, &modules, &req.inputs).unwrap();
            prop_assert_eq!(reference.len(), got.len());
            for (key, tensor) in &reference {
                let g = &got[key];
                prop_assert_eq!(tensor.data.len(), g.len());
                for (a, b) in tensor.data.iter().zip(g) {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "request {} output '{}' not bit-identical after {} attempts",
                        req.id, key, trace.attempts
                    );
                }
            }
        }
    }

    /// Replay: the same `(seed, plan, policy)` serves to a byte-identical
    /// JSON report — including an outage window cutting through the
    /// schedule.
    #[test]
    fn same_seed_and_plan_replay_byte_identically(
        choice in 0usize..5,
        n in 2usize..8,
        policy in 0usize..3,
        overlap in proptest::bool::ANY,
        seed in 0u64..1_000,
        transient_pct in 0u32..50,
        corrupt_pct in 0u32..50,
        fail_ms in 0u64..4,
        recovers in proptest::bool::ANY,
    ) {
        let src = source_for(choice, 0);
        let c = Compiled::new(&src);
        let modules = c.modules();
        let requests = generate_requests(&modules, n, &Arrival::Closed, seed).unwrap();
        let mut spec = format!(
            "{}:transient={},corrupt={}",
            seed ^ 0xfa17,
            transient_pct as f64 / 100.0,
            corrupt_pct as f64 / 100.0,
        );
        if fail_ms > 0 {
            spec.push_str(&format!(",fail={}", fail_ms as f64 * 1e-3));
            if recovers {
                spec.push_str(&format!(",recover={}", fail_ms as f64 * 2e-3));
            }
        }
        let opts = RuntimeOptions {
            requests: n,
            batch: batch_for(policy),
            overlap_dma: overlap,
            execute: false,
            seed,
            faults: FaultPlan::parse(&spec).unwrap(),
            recovery: RecoveryPolicy {
                max_retries: 4,
                backoff_s: 1.0e-4,
                deadline_s: Some(10.0),
                ..RecoveryPolicy::default()
            },
            ..Default::default()
        };
        let kernels = c.kernels();
        let run = || serve(c.system(), &c.art.names, &modules, &kernels, &requests, &opts).unwrap();
        let (first, second) = (run(), run());
        prop_assert_eq!(&first.report, &second.report);
        prop_assert_eq!(first.report.to_json(), second.report.to_json());
    }

    /// The retry cap is absolute: no trace ever records more than
    /// `max_retries + 1` attempts, and a `Failed` request exhausted
    /// exactly that allowance.
    #[test]
    fn attempts_never_exceed_the_retry_cap(
        choice in 0usize..5,
        n in 2usize..8,
        policy in 0usize..3,
        overlap in proptest::bool::ANY,
        seed in 0u64..1_000,
        max_retries in 0u32..4,
        corrupt_pct in 30u32..90,
    ) {
        let src = source_for(choice, 0);
        let c = Compiled::new(&src);
        let modules = c.modules();
        let requests = generate_requests(&modules, n, &Arrival::Closed, seed).unwrap();
        let opts = RuntimeOptions {
            requests: n,
            batch: batch_for(policy),
            overlap_dma: overlap,
            execute: false,
            seed,
            faults: FaultPlan {
                corrupt_rate: corrupt_pct as f64 / 100.0,
                transient_rate: 0.2,
                ..FaultPlan::transient(seed ^ 0xcafe, 0.0)
            },
            recovery: RecoveryPolicy {
                max_retries,
                ..RecoveryPolicy::default()
            },
            ..Default::default()
        };
        let kernels = c.kernels();
        let report = serve(c.system(), &c.art.names, &modules, &kernels, &requests, &opts)
            .unwrap()
            .report;
        let mut retried = 0usize;
        for trace in &report.traces {
            prop_assert!(
                trace.attempts <= max_retries + 1,
                "request {} used {} attempts (cap {})",
                trace.id, trace.attempts, max_retries + 1
            );
            if let RequestOutcome::Failed { attempts } = trace.outcome {
                prop_assert_eq!(attempts, max_retries + 1);
                prop_assert_eq!(trace.attempts, attempts);
            }
            if trace.attempts > 1 {
                retried += 1;
            }
        }
        prop_assert_eq!(report.retried, retried);
        let outcomes = report.completed + report.timed_out + report.shed + report.failed;
        prop_assert_eq!(outcomes, n, "every request reaches a terminal outcome");
    }
}
