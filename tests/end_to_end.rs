//! Cross-crate integration tests: DSL source → complete flow →
//! functional verification, across kernels and option combinations.

use cfdfpga::flow::{Flow, FlowOptions};
use cfdfpga::mnemosyne::MemoryOptions;
use cfdfpga::sysgen::SystemConfig;
use cfdfpga::zynq::SimConfig;

fn flow(src: &str, opts: &FlowOptions) -> cfdfpga::flow::Artifacts {
    Flow::compile(src, opts).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"))
}

#[test]
fn helmholtz_all_option_combinations_verify() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(4);
    for factorize in [false, true] {
        for decoupled in [false, true] {
            for sharing in [false, true] {
                let opts = FlowOptions {
                    factorize,
                    decoupled,
                    memory: MemoryOptions {
                        sharing,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let art = flow(&src, &opts);
                let v = art.verify(2, 99).unwrap();
                assert!(
                    v.bitexact,
                    "factorize={factorize} decoupled={decoupled} sharing={sharing}"
                );
            }
        }
    }
}

#[test]
fn every_example_kernel_compiles_and_verifies() {
    for src in [
        cfdfpga::cfdlang::examples::inverse_helmholtz(5),
        cfdfpga::cfdlang::examples::interpolation(4, 6),
        cfdfpga::cfdlang::examples::matrix_sandwich(6),
        cfdfpga::cfdlang::examples::axpy(4),
    ] {
        let art = flow(&src, &FlowOptions::default());
        assert!(art.verify(2, 3).unwrap().bitexact, "{src}");
    }
}

#[test]
fn c_source_and_host_source_are_generated() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(4);
    let art = flow(&src, &FlowOptions::default());
    assert!(art.c_source.contains("void kernel_body("));
    assert!(art.c_source.contains("restrict"));
    assert!(art.host_source.contains("run_simulation"));
    assert!(art.host_source.contains("wait_for_interrupt"));
}

#[test]
fn simulation_timings_are_consistent() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(4);
    let art = flow(&src, &FlowOptions::default());
    let r = art
        .simulate(&SimConfig {
            elements: 128,
            ..Default::default()
        })
        .unwrap();
    assert!(r.exec_s > 0.0);
    assert!(r.transfer_s > 0.0);
    assert!((r.exec_s + r.transfer_s - r.total_s).abs() <= 1e-9 * r.total_s);
    // More elements, proportionally more time.
    let r2 = art
        .simulate(&SimConfig {
            elements: 256,
            ..Default::default()
        })
        .unwrap();
    assert!((r2.total_s / r.total_s - 2.0).abs() < 0.05);
}

#[test]
fn explicit_system_configuration_respected() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(4);
    let opts = FlowOptions {
        system: Some(SystemConfig { k: 2, m: 4 }),
        ..Default::default()
    };
    let art = flow(&src, &opts);
    let sys = art.system.as_ref().unwrap();
    assert_eq!(sys.config.k, 2);
    assert_eq!(sys.config.m, 4);
    assert_eq!(sys.config.batch(), 2);
    assert_eq!(sys.host.config.m, 4);
}

#[test]
fn mnemosyne_config_flows_from_liveness() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(4);
    let art = flow(&src, &FlowOptions::default());
    // The config lists exactly the kernel's arrays.
    assert_eq!(
        art.mnemosyne_config.arrays.len(),
        art.kernel.params.len() + art.kernel.locals.len()
    );
    // And carries compatibility edges from the analysis.
    assert!(!art.mnemosyne_config.address_space_compatible.is_empty());
    // Every shared group in the subsystem respects them.
    for u in &art.memory.units {
        for (i, &a) in u.members.iter().enumerate() {
            for &b in &u.members[i + 1..] {
                assert!(art.mnemosyne_config.addr_compatible(a, b));
            }
        }
    }
}

#[test]
fn schedule_is_legal_for_dependences() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(4);
    let art = flow(&src, &FlowOptions::default());
    assert!(cfdfpga::pschedule::legal(
        &art.model,
        art.dependences(),
        &art.schedule
    ));
}

#[test]
fn decoupled_vs_inside_totals_match_paper_structure() {
    // Decoupled: PLM holds everything, accelerator holds nothing.
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(11);
    let dec = flow(&src, &FlowOptions::default());
    assert_eq!(dec.hls_report.brams, 0);
    assert_eq!(dec.kernel.locals.len(), 0);
    // Inside: the accelerator holds the six temporaries.
    let ins = flow(
        &src,
        &FlowOptions {
            decoupled: false,
            memory: MemoryOptions {
                sharing: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    assert_eq!(ins.kernel.locals.len(), 6);
    assert_eq!(ins.hls_report.brams, 24); // paper: 24
                                          // The decoupled design uses fewer BRAMs overall (the paper's point:
                                          // 33 inside vs 18 shared-PLM; ours: 34 vs 16).
    let dec_total = dec.memory.brams;
    let ins_total = ins.memory.brams + ins.hls_report.brams;
    assert!(
        dec_total < ins_total,
        "decoupled {dec_total} vs inside {ins_total}"
    );
}

#[test]
fn pointwise_only_kernel_has_no_reduction_loops() {
    let src = cfdfpga::cfdlang::examples::axpy(4);
    let art = flow(&src, &FlowOptions::default());
    for l in &art.hls_report.loops {
        assert_eq!(l.ii, 1, "pointwise loops pipeline at II=1");
    }
}
