//! Differential properties of the online serving event loop.
//!
//! The PR-10 reactor claims it is not a new scheduler but the *same*
//! schedule, re-derived event by event. These properties pin that
//! claim:
//!
//! * **FIFO identity** — with the event loop on but no policy armed
//!   (no SLO, no queue bound, one tier), every serving report is
//!   byte-identical to the offline PR-5 scheduler's: same JSON
//!   document, same tick totals, same per-request traces — for closed
//!   *and* Poisson arrivals, serial and double-buffered, across batch
//!   capacities.
//! * **Priority conservation** — tiered serving reorders admission but
//!   never loses a request: every id resolves exactly once, and under
//!   bounded load (no deadline, no shedding) every tier drains — the
//!   low tier is delayed at round boundaries, never starved.
//! * **Emitter well-formedness** — every report JSON parses under the
//!   minimal validator, and `json_escape` keeps hostile labels inside
//!   one string literal.

use cfd_core::program::{ProgramFlow, ProgramOptions};
use proptest::prelude::*;
use runtime::{
    generate_timing_requests, json, serve, Arrival, BatchPolicy, OnlinePolicy, RequestOutcome,
    RuntimeOptions,
};
use teil::ir::Module;

/// Small generated kernels that compile in milliseconds.
fn source_for(choice: usize) -> String {
    match choice % 3 {
        0 => cfdlang::examples::axpy(3),
        1 => cfdlang::examples::matrix_sandwich(2),
        _ => cfdlang::examples::axpy_chain(3),
    }
}

struct Compiled {
    art: cfd_core::ProgramArtifacts,
}

impl Compiled {
    fn new(source: &str) -> Compiled {
        Compiled {
            art: ProgramFlow::compile(source, &ProgramOptions::default())
                .expect("test kernel compiles"),
        }
    }

    fn modules(&self) -> Vec<&Module> {
        self.art.kernels.iter().map(|a| &*a.module).collect()
    }

    fn system(&self) -> &sysgen::MultiSystemDesign {
        self.art.system.as_ref().expect("system fits zcu106")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The neutral event loop is the offline scheduler, byte for byte:
    /// identical report JSON (the replay surface), identical tick
    /// totals, identical per-request traces.
    #[test]
    fn online_fifo_report_is_byte_identical_to_offline(
        choice in 0usize..3,
        n in 2usize..10,
        poisson in proptest::bool::ANY,
        rate_rps in 50u64..5_000,
        policy in 0usize..3,
        overlap in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let c = Compiled::new(&source_for(choice));
        let modules = c.modules();
        let arrival = if poisson {
            Arrival::Poisson { rate_rps: rate_rps as f64 }
        } else {
            Arrival::Closed
        };
        let requests = generate_timing_requests(n, &arrival, seed).unwrap();
        let batch = match policy {
            0 => BatchPolicy::Auto,
            1 => BatchPolicy::Fixed(2),
            _ => BatchPolicy::Disabled,
        };
        let opts = RuntimeOptions {
            requests: n,
            arrival,
            batch,
            overlap_dma: overlap,
            execute: false,
            seed,
            ..Default::default()
        };
        let online_opts = RuntimeOptions {
            online: OnlinePolicy {
                event_loop: true,
                ..Default::default()
            },
            ..opts.clone()
        };
        let off = serve(c.system(), &c.art.names, &modules, &[], &requests, &opts)
            .unwrap()
            .report;
        let on = serve(c.system(), &c.art.names, &modules, &[], &requests, &online_opts)
            .unwrap()
            .report;
        prop_assert_eq!(on.to_json(), off.to_json(), "replay JSON diverged");
        prop_assert_eq!(on.makespan_ticks, off.makespan_ticks);
        prop_assert_eq!(on.exec_ticks, off.exec_ticks);
        prop_assert_eq!(on.transfer_ticks, off.transfer_ticks);
        prop_assert_eq!(on.overlapped_ticks, off.overlapped_ticks);
        prop_assert_eq!(on.rounds, off.rounds);
        prop_assert_eq!(on.fast_forwarded_rounds, off.fast_forwarded_rounds);
        prop_assert_eq!(&on.traces, &off.traces);
    }

    /// Tiered admission conserves requests and, with no deadline and no
    /// queue bound, drains every tier — the low tier waits at round
    /// boundaries but is never starved.
    #[test]
    fn priority_tiers_conserve_requests_without_starvation(
        choice in 0usize..3,
        n in 4usize..12,
        tiers in 2u32..4,
        poisson in proptest::bool::ANY,
        rate_rps in 50u64..2_000,
        overlap in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let c = Compiled::new(&source_for(choice));
        let modules = c.modules();
        let arrival = if poisson {
            Arrival::Poisson { rate_rps: rate_rps as f64 }
        } else {
            Arrival::Closed
        };
        let mut requests = generate_timing_requests(n, &arrival, seed).unwrap();
        for r in &mut requests {
            r.tier = (r.id % tiers as usize) as u8;
        }
        let opts = RuntimeOptions {
            requests: n,
            arrival,
            overlap_dma: overlap,
            execute: false,
            seed,
            online: OnlinePolicy {
                event_loop: true,
                priority_tiers: tiers as u8,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = serve(c.system(), &c.art.names, &modules, &[], &requests, &opts)
            .unwrap()
            .report;
        // Conservation: every id resolves exactly once.
        prop_assert_eq!(
            report.completed + report.timed_out + report.shed + report.failed,
            n
        );
        prop_assert_eq!(report.traces.len(), n);
        for (id, t) in report.traces.iter().enumerate() {
            prop_assert_eq!(t.id, id, "traces must stay in id order");
        }
        // No starvation: bounded load with no deadline completes all
        // tiers, including the lowest.
        prop_assert_eq!(report.completed, n);
        for t in &report.traces {
            prop_assert_eq!(&t.outcome, &RequestOutcome::Completed);
        }
        prop_assert!(json::validate(&report.to_json()).is_ok());
    }

    /// Every armed-policy report stays one well-formed JSON document
    /// under the minimal parser.
    #[test]
    fn report_json_always_validates(
        n in 2usize..10,
        slo_ms in 0u64..50,
        shed in 0usize..4,
        rate_rps in 100u64..20_000,
        overlap in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let c = Compiled::new(&source_for(0));
        let modules = c.modules();
        let arrival = Arrival::Poisson { rate_rps: rate_rps as f64 };
        let requests = generate_timing_requests(n, &arrival, seed).unwrap();
        let opts = RuntimeOptions {
            requests: n,
            arrival,
            overlap_dma: overlap,
            execute: false,
            seed,
            online: OnlinePolicy {
                event_loop: true,
                // 0 draws the unarmed side of each knob.
                slo_s: (slo_ms > 0).then_some(slo_ms as f64 * 1e-3),
                shed_queue: (shed > 0).then_some(shed),
                ..Default::default()
            },
            ..Default::default()
        };
        let report = serve(c.system(), &c.art.names, &modules, &[], &requests, &opts)
            .unwrap()
            .report;
        if let Err(e) = json::validate(&report.to_json()) {
            panic!("invalid report JSON: {e}");
        }
    }

    /// `json_escape` confines arbitrary strings to one JSON string
    /// literal: the wrapped document always validates.
    #[test]
    fn json_escape_confines_arbitrary_strings(
        codes in proptest::collection::vec(0u32..0xD800, 24),
    ) {
        let s: String = codes
            .iter()
            .map(|&c| char::from_u32(c).expect("below the surrogate range"))
            .collect();
        let doc = format!("{{\"label\": \"{}\"}}", json::json_escape(&s));
        if let Err(e) = json::validate(&doc) {
            panic!("escape broke the document: {e}");
        }
    }
}

/// A hostile board name must not break the fleet JSON document.
#[test]
fn fleet_json_survives_hostile_board_names() {
    let c = Compiled::new(&cfdlang::examples::axpy(3));
    let modules = c.modules();
    let mut board = runtime::FleetBoard::healthy(c.system().clone());
    board.name = "evil\"board\\name\n".to_string();
    let boards = vec![board];
    let fopts = runtime::FleetOptions {
        base: RuntimeOptions {
            requests: 6,
            execute: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let requests = generate_timing_requests(6, &Arrival::Closed, 7).unwrap();
    let fleet = runtime::serve_fleet(&boards, &c.art.names, &modules, &[], &requests, &fopts)
        .unwrap()
        .report;
    let doc = fleet.to_json();
    json::validate(&doc).unwrap();
    assert!(doc.contains("evil\\\"board\\\\name\\n"));
}
