//! Content-level checks of every generated artifact: the C kernel, the
//! host skeleton, the Verilog system netlist, the Mnemosyne metadata and
//! the compatibility graph, for the paper's exact kernel.

use cfdfpga::flow::{Flow, FlowOptions};
use cfdfpga::sysgen::{emit_system_verilog, HostProgram, Platform, SystemConfig, SystemDesign};
use std::sync::OnceLock;

fn paper() -> &'static cfdfpga::flow::Artifacts {
    static CELL: OnceLock<cfdfpga::flow::Artifacts> = OnceLock::new();
    CELL.get_or_init(|| {
        let src = cfdfpga::cfdlang::examples::inverse_helmholtz(11);
        Flow::compile(&src, &FlowOptions::default()).expect("compiles")
    })
}

#[test]
fn c_kernel_matches_figure6_interface() {
    let c = &paper().c_source;
    // Parameter order of Figure 6: interface first, then temporaries.
    let pos = |s: &str| {
        c.find(s)
            .unwrap_or_else(|| panic!("missing '{s}' in:\n{c}"))
    };
    assert!(pos("restrict S") < pos("restrict D"));
    assert!(pos("restrict D") < pos("restrict u"));
    assert!(pos("restrict u") < pos("restrict v"));
    assert!(pos("restrict v") < pos("restrict t "));
    assert!(pos("restrict r") < pos("restrict t0"));
    // Flattened row-major addressing for p = 11.
    assert!(c.contains("121 * i0 + 11 * i1 + i2"));
    // Six accumulator-style contraction stages.
    assert_eq!(c.matches("double acc = 0.0;").count(), 6);
    assert_eq!(c.matches("acc +=").count(), 6);
}

#[test]
fn host_skeleton_structure() {
    let h = &paper().host_source;
    // k = m = 16 -> 50,000 / 16 = 3,125 rounds, batch 1.
    assert!(h.contains("16 accelerators, 16 PLM systems"), "{h}");
    assert!(h.contains("i < 3125"), "{h}");
    assert!(h.contains("b < 1"), "{h}");
    assert!(h.contains("dma_write"));
    assert!(h.contains("dma_read"));
}

#[test]
fn verilog_netlist_for_paper_system() {
    let art = paper();
    let v = emit_system_verilog(art.system.as_ref().unwrap());
    assert!(v.contains("module system_top"));
    assert!(v.contains("k = 16 accelerators, m = 16 PLM systems"));
    // All sixteen accelerators and all PLM units of each system.
    for a in 0..16 {
        assert!(v.contains(&format!("u_acc{a} (")));
    }
    assert!(v.contains("u_plm15_plm_S"));
    // Equal k = m: no batch counter.
    assert!(!v.contains("batch_count"));
}

#[test]
fn verilog_netlist_batched_variant() {
    let art = paper();
    let cfg = SystemConfig { k: 4, m: 16 };
    let host = HostProgram::from_kernel(&art.kernel, cfg);
    let d =
        SystemDesign::build(&Platform::zcu106(), &art.hls_report, &art.memory, cfg, host).unwrap();
    let v = emit_system_verilog(&d);
    assert!(v.contains("batch = 4"));
    assert!(v.contains("batch_count"));
    assert!(v.contains(".BATCH(4)"));
}

#[test]
fn mnemosyne_metadata_lists_figure6_arrays() {
    let cfg = &paper().mnemosyne_config;
    for name in ["S", "D", "u", "v", "t", "r", "t0", "t1", "t2", "t3"] {
        assert!(cfg.index_of(name).is_some(), "missing array {name}");
    }
    // Interface flags.
    for name in ["S", "D", "u", "v"] {
        assert!(cfg.arrays[cfg.index_of(name).unwrap()].interface);
    }
    for name in ["t", "r", "t0", "t1", "t2", "t3"] {
        assert!(!cfg.arrays[cfg.index_of(name).unwrap()].interface);
    }
    // Sizes.
    assert_eq!(cfg.arrays[cfg.index_of("S").unwrap()].words, 121);
    assert_eq!(cfg.arrays[cfg.index_of("u").unwrap()].words, 1331);
}

#[test]
fn compatibility_graph_temporal_chain() {
    // The factored temporaries form an interval chain along the schedule:
    // stage-adjacent pairs conflict, distance >= 2 pairs are compatible.
    let g = &paper().compat;
    let chain = ["t0", "t1", "t", "r", "t2", "t3"];
    let idx: Vec<usize> = chain.iter().map(|n| g.node_by_name(n).unwrap()).collect();
    for i in 0..chain.len() {
        for j in (i + 1)..chain.len() {
            let compatible =
                g.compatible(idx[i], idx[j], cfdfpga::pschedule::CompatKind::AddressSpace);
            if j == i + 1 {
                assert!(!compatible, "{} and {} must conflict", chain[i], chain[j]);
            } else {
                assert!(
                    compatible,
                    "{} and {} must be compatible",
                    chain[i], chain[j]
                );
            }
        }
    }
}

#[test]
fn plm_units_overlay_alternating_stages() {
    // Sharing groups: {t0, t, t2} and {t1, r, t3} (interval coloring).
    let art = paper();
    let cfg = &art.mnemosyne_config;
    let temp_units: Vec<Vec<&str>> = art
        .memory
        .units
        .iter()
        .filter(|u| u.members.iter().all(|&m| !cfg.arrays[m].interface))
        .map(|u| {
            u.members
                .iter()
                .map(|&m| cfg.arrays[m].name.as_str())
                .collect()
        })
        .collect();
    assert_eq!(temp_units.len(), 2);
    for group in &temp_units {
        assert_eq!(group.len(), 3);
    }
}

#[test]
fn hls_loop_reports_cover_all_stages() {
    let r = &paper().hls_report;
    // Seven pipelined leaf loops: six contraction stages + Hadamard.
    assert_eq!(r.loops.len(), 7);
    let ii5 = r.loops.iter().filter(|l| l.ii == 5).count();
    let ii1 = r.loops.iter().filter(|l| l.ii == 1).count();
    assert_eq!(ii5, 6, "contraction stages pipeline at the dadd recurrence");
    assert_eq!(ii1, 1, "the Hadamard pipelines at II = 1");
    for l in &r.loops {
        assert_eq!(l.trip, 11);
        assert!(l.pipelined);
    }
}

#[test]
fn schedule_groups_follow_program_order() {
    let art = paper();
    let groups = art.schedule.groups();
    assert_eq!(groups.len(), art.module.stmts.len(), "no fusion by default");
    let flat: Vec<usize> = groups.into_iter().flatten().collect();
    // RAW chain forces producer-before-consumer; with the reference
    // sequence this is program order.
    for e in art.dependences().raw() {
        let pos = |s: usize| flat.iter().position(|&x| x == s).unwrap();
        assert!(pos(e.src) < pos(e.dst));
    }
}
