//! The reproduction gate: every headline number of the paper's
//! evaluation (Section VI), asserted against this repository's models.
//!
//! | artifact | paper | this repo |
//! |----------|-------|-----------|
//! | kernel LUT/FF/DSP | 2,314 / 2,999 / 15 | ±10% / ±10% / exact |
//! | PLM BRAM (no share → share) | 31 → 18 | 28 → 16 (512-word BRAM) |
//! | temporaries inside | 9 + 24 = 33 | 10 + 24 = 34 |
//! | max kernels (no share → share) | 8 → 16 | 8 → 16 |
//! | Fig. 9 accel speedup @16 | 15.76 | ±4% |
//! | Fig. 9 total speedup @16 | 12.58 | ±4% |
//! | Fig. 10 HW k=16 vs ARM | 8.62 | ±8% |

use cfdfpga::flow::{Flow, FlowOptions};
use cfdfpga::mnemosyne::MemoryOptions;
use cfdfpga::sysgen::{HostProgram, Platform, SystemConfig, SystemDesign};
use cfdfpga::zynq::{ArmCostModel, SimConfig};
use std::sync::OnceLock;

const ELEMENTS: usize = 2_000; // ratios are element-count independent

fn paper_kernel(sharing: bool) -> &'static cfdfpga::flow::Artifacts {
    static SHARED: OnceLock<cfdfpga::flow::Artifacts> = OnceLock::new();
    static UNSHARED: OnceLock<cfdfpga::flow::Artifacts> = OnceLock::new();
    let cell = if sharing { &SHARED } else { &UNSHARED };
    cell.get_or_init(|| {
        let src = cfdfpga::cfdlang::examples::inverse_helmholtz(11);
        Flow::compile(
            &src,
            &FlowOptions {
                memory: MemoryOptions {
                    sharing,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("paper kernel compiles")
    })
}

fn simulate(k: usize, m: usize) -> cfdfpga::zynq::HwResult {
    let art = paper_kernel(true);
    let cfg = SystemConfig { k, m };
    let host = HostProgram::from_kernel(&art.kernel, cfg);
    let d = SystemDesign::build(&Platform::zcu106(), &art.hls_report, &art.memory, cfg, host)
        .expect("fits");
    cfdfpga::zynq::simulate_hw(
        &d,
        &SimConfig {
            elements: ELEMENTS,
            ..Default::default()
        },
    )
}

#[test]
fn kernel_resources_match_in_text_report() {
    let r = &paper_kernel(true).hls_report;
    assert_eq!(r.dsps, 15);
    assert!(
        (r.luts as f64 - 2314.0).abs() / 2314.0 < 0.10,
        "LUT {}",
        r.luts
    );
    assert!(
        (r.ffs as f64 - 2999.0).abs() / 2999.0 < 0.10,
        "FF {}",
        r.ffs
    );
    assert!((r.clock_mhz - 200.0).abs() < f64::EPSILON);
}

#[test]
fn plm_brams_match_in_text_report_shape() {
    // Paper: 31 → 18 (ratio 0.58). Ours: 28 → 16 (ratio 0.57).
    let no = paper_kernel(false).memory.brams;
    let sh = paper_kernel(true).memory.brams;
    assert_eq!(no, 28);
    assert_eq!(sh, 16);
    let ratio = sh as f64 / no as f64;
    assert!((ratio - 18.0 / 31.0).abs() < 0.05, "ratio {ratio}");
}

#[test]
fn sharing_doubles_parallel_kernels() {
    let no = paper_kernel(false).system.as_ref().unwrap().config;
    let sh = paper_kernel(true).system.as_ref().unwrap().config;
    assert_eq!((no.k, no.m), (8, 8));
    assert_eq!((sh.k, sh.m), (16, 16));
}

#[test]
fn figure9_speedups_within_tolerance() {
    let paper = [
        (1usize, 1.00f64, 1.00f64),
        (2, 2.00, 1.96),
        (4, 3.97, 3.78),
        (8, 7.91, 7.09),
        (16, 15.76, 12.58),
    ];
    let base = simulate(1, 1);
    for (k, pacc, ptot) in paper {
        let r = simulate(k, k);
        let acc = base.exec_s / r.exec_s;
        let tot = base.total_s / r.total_s;
        assert!(
            (acc - pacc).abs() / pacc < 0.04,
            "k={k}: accel {acc:.2} vs {pacc}"
        );
        assert!(
            (tot - ptot).abs() / ptot < 0.04,
            "k={k}: total {tot:.2} vs {ptot}"
        );
    }
}

#[test]
fn figure10_arm_comparison_within_tolerance() {
    let art = paper_kernel(true);
    let model = ArmCostModel::a53_1200mhz();
    let sw = cfdfpga::zynq::sim::sw_reference(&art.module, &model, ELEMENTS).unwrap();
    let hls_sw = cfdfpga::zynq::sim::sw_hls_code(&art.kernel, &model, ELEMENTS).unwrap();
    // SW HLS code: paper 0.90.
    let s_hls = sw.total_s / hls_sw.total_s;
    assert!((s_hls - 0.90).abs() < 0.06, "SW HLS {s_hls:.2}");
    // HW bars: paper 0.69 / 4.86 / 8.62.
    for (k, p) in [(1usize, 0.69f64), (8, 4.86), (16, 8.62)] {
        let r = simulate(k, k);
        let s = sw.total_s / r.total_s;
        assert!((s - p).abs() / p < 0.08, "HW k={k}: {s:.2} vs paper {p}");
    }
}

#[test]
fn table1_dsps_exact_and_luts_close() {
    let art = paper_kernel(true);
    let b = Platform::zcu106();
    let paper = [
        (1usize, 11_292usize),
        (2, 15_572),
        (4, 24_480),
        (8, 42_141),
        (16, 77_235),
    ];
    for (k, plut) in paper {
        let cfg = SystemConfig { k, m: k };
        let host = HostProgram::from_kernel(&art.kernel, cfg);
        let d = SystemDesign::build(&b, &art.hls_report, &art.memory, cfg, host).unwrap();
        assert_eq!(d.dsps, 15 * k);
        let rel = (d.luts as f64 - plut as f64).abs() / plut as f64;
        assert!(rel < 0.10, "k={k}: LUT {} vs paper {plut}", d.luts);
    }
}

#[test]
fn figure8_feasibility_crossover() {
    let no = paper_kernel(false).memory.brams;
    let sh = paper_kernel(true).memory.brams;
    let budget = Platform::zcu106().board.brams;
    assert!(8 * no <= budget);
    assert!(16 * no > budget, "no-sharing must not fit 16 kernels");
    assert!(16 * sh <= budget, "sharing must fit 16 kernels");
    assert!(32 * sh > budget);
}

#[test]
fn batching_shows_no_improvement() {
    // Paper: "These experiments did not show much improvements".
    for (k, m) in [(1usize, 4usize), (2, 8), (4, 8)] {
        let eq = simulate(k, k);
        let batched = simulate(k, m);
        let rel = (batched.total_s - eq.total_s).abs() / eq.total_s;
        assert!(rel < 0.02, "k={k} m={m}: {:.2}%", rel * 100.0);
    }
}

#[test]
fn nine_lines_of_dsl() {
    // "all results have been achieved by writing only 9 lines of DSL".
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(11);
    assert_eq!(src.trim().lines().count(), 9);
}
