//! Platform-portability guarantees over the whole catalog:
//!
//! * **functional portability** — a program's computed tensors are
//!   bit-identical on every catalog platform (timing differs, results
//!   never),
//! * **Eq. (3) soundness** — every configuration the enumerators accept
//!   actually fits its platform's resources, on every board,
//! * **structured infeasibility** — a replication that exceeds a small
//!   board comes back as [`FlowError::DoesNotFit`], never a panic, and
//!   the automatic choice degrades to a smaller feasible system.

use cfdfpga::flow::dse::DseEngine;
use cfdfpga::flow::program::{ProgramFlow, ProgramOptions};
use cfdfpga::flow::{Flow, FlowError, FlowOptions};
use cfdfpga::sysgen::{self, Platform, SystemConfig};
use cfdfpga::zynq;
use proptest::prelude::*;
use teil::Module;

fn program_options(platform: Platform) -> ProgramOptions {
    ProgramOptions {
        flow: FlowOptions::for_platform(platform),
        ..Default::default()
    }
}

/// Satellite: cross-platform bit-exactness. The `simulation_step`
/// chain is compiled for every catalog platform and executed through
/// the generated kernels with identical random inputs — every output
/// tensor must match the ZCU106 compilation bit for bit, while the
/// synthesis clock (and hence timing) differs across platforms.
#[test]
fn simulation_step_tensors_bit_identical_on_every_platform() {
    let src = cfdfpga::cfdlang::examples::simulation_step(5);
    let reference = ProgramFlow::compile(&src, &program_options(Platform::zcu106())).unwrap();
    let ref_modules: Vec<&Module> = reference.kernels.iter().map(|a| &*a.module).collect();
    let external = zynq::random_program_inputs(&ref_modules, 20_260_727);
    let ref_kernels: Vec<&cgen::CKernel> = reference.kernels.iter().map(|a| &a.kernel).collect();
    let want =
        zynq::run_program_chain(&reference.names, &ref_modules, &ref_kernels, &external).unwrap();

    let mut clocks_seen = Vec::new();
    for platform in Platform::catalog() {
        let id = platform.id.clone();
        let art = ProgramFlow::compile(&src, &program_options(platform)).unwrap();
        let modules: Vec<&Module> = art.kernels.iter().map(|a| &*a.module).collect();
        let kernels: Vec<&cgen::CKernel> = art.kernels.iter().map(|a| &a.kernel).collect();
        let got = zynq::run_program_chain(&art.names, &modules, &kernels, &external).unwrap();
        assert_eq!(want.len(), got.len(), "{id}: output set differs");
        for (key, w) in &want {
            let g = &got[key];
            assert_eq!(w.len(), g.len(), "{id}: {key} length differs");
            for (a, b) in w.iter().zip(g) {
                assert_eq!(a.to_bits(), b.to_bits(), "{id}: {key} diverged");
            }
        }
        clocks_seen.push(art.kernels[0].hls_report.clock_mhz);
    }
    // The identical tensors came from genuinely different syntheses.
    clocks_seen.sort_by(f64::total_cmp);
    clocks_seen.dedup();
    assert!(
        clocks_seen.len() >= 2,
        "catalog should span several default clocks, saw {clocks_seen:?}"
    );
}

/// Satellite: the structured small-board error. A replication the
/// ZCU106 accepts must come back from the Pynq-Z2 as
/// [`FlowError::DoesNotFit`] naming the board — and the automatic
/// choice must degrade to a smaller feasible system instead of
/// panicking or failing.
#[test]
fn small_board_requests_degrade_or_error_structurally() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(11);
    let on_zcu106 = Flow::compile(&src, &FlowOptions::default()).unwrap();
    let big = on_zcu106.system.as_ref().expect("paper config fits").config;
    assert_eq!((big.k, big.m), (16, 16));

    // Explicit oversized request: structured error, board named.
    let opts = FlowOptions {
        system: Some(big),
        ..FlowOptions::for_platform(Platform::pynq_z2())
    };
    match Flow::compile(&src, &opts).unwrap_err() {
        FlowError::DoesNotFit { k, m, board } => {
            assert_eq!((k, m), (16, 16));
            assert!(board.contains("Pynq"), "board name in error: {board}");
        }
        other => panic!("expected DoesNotFit, got {other}"),
    }

    // Automatic choice: degrade to the largest feasible replication.
    let auto = Flow::compile(&src, &FlowOptions::for_platform(Platform::pynq_z2())).unwrap();
    let small = auto.system.as_ref().expect("something fits").config;
    assert!(small.k < big.k, "degraded: {small:?} vs {big:?}");
    let sim = auto
        .simulate(&zynq::SimConfig {
            elements: 64,
            ..Default::default()
        })
        .unwrap();
    assert!(sim.total_s > 0.0);
}

/// An invalid (k, m) relation is rejected as a structured error too —
/// the Eq. (3) precondition never reaches the panicking assert.
#[test]
fn invalid_replication_shape_is_a_flow_error() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(4);
    let opts = FlowOptions {
        system: Some(SystemConfig { k: 3, m: 7 }),
        ..Default::default()
    };
    match Flow::compile(&src, &opts).unwrap_err() {
        FlowError::Backend(msg) => assert!(msg.contains("invalid replication")),
        other => panic!("expected Backend error, got {other}"),
    }
}

/// Tentpole acceptance: the portfolio sweep spans the catalog, its
/// Pareto frontier covers ≥3 platforms, backends are memoized per
/// (clock, backend key), and the ZCU106 rows at the default clock are
/// bit-identical to the plain single-board sweep.
#[test]
fn portfolio_sweep_spans_platforms_and_matches_single_board() {
    use cfdfpga::flow::dse::DseGrid;
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(5);
    let engine = DseEngine::prepare(&src, &FlowOptions::default()).unwrap();
    let grid = DseGrid {
        k: vec![1, 4, 16],
        batch: vec![1],
        sharing: vec![true, false],
        decoupled: vec![true],
        partition: vec![1],
    };
    let catalog = Platform::catalog();
    let report = engine.run_portfolio(&catalog, &grid, 2, 2_000);

    // Every platform × ladder-rung × grid-point combination evaluated.
    let combos: usize = catalog.len() * 6; // 6 grid points
    let rungs: usize = catalog.iter().map(|p| p.clock_ladder_mhz.len()).sum();
    assert_eq!(report.evaluated, rungs * 6);
    assert!(report.feasible > combos / 2, "most combos fit somewhere");

    // Backends memoized per (clock, backend key): unique clocks × 2
    // sharing variants, independent of platforms and k.
    let mut clocks: Vec<u64> = catalog
        .iter()
        .flat_map(|p| p.clock_ladder_mhz.iter().map(|c| c.to_bits()))
        .collect();
    clocks.sort_unstable();
    clocks.dedup();
    assert_eq!(report.backend_compiles, clocks.len() * 2);
    assert_eq!(
        report.backend_reuses,
        report.evaluated - report.backend_compiles
    );

    // Per-platform feasibility lands in the summaries, and the Pareto
    // frontier spans at least three platforms.
    assert!(report.feasible_platforms().len() >= 3);
    let frontier = report.pareto_frontier();
    let mut frontier_platforms: Vec<&str> = frontier.iter().map(|o| o.platform.as_str()).collect();
    frontier_platforms.sort_unstable();
    frontier_platforms.dedup();
    assert!(
        frontier_platforms.len() >= 3,
        "frontier spans {frontier_platforms:?}"
    );
    for o in &frontier {
        assert!(o.outcome.feasible && o.utilization > 0.0 && o.utilization <= 1.0);
    }

    // ZCU106 @ 200 MHz rows are bit-identical to the plain sweep.
    let single = engine.run(&grid, 2, 2_000);
    for o in &report.outcomes {
        if o.platform != "zcu106" || o.clock_mhz != 200.0 {
            continue;
        }
        let twin = single
            .outcomes
            .iter()
            .find(|s| s.point == o.outcome.point)
            .expect("same grid");
        assert_eq!(twin.feasible, o.outcome.feasible);
        assert_eq!(twin.luts, o.outcome.luts);
        assert_eq!(twin.brams, o.outcome.brams);
        assert_eq!(twin.latency_cycles, o.outcome.latency_cycles);
        assert_eq!(twin.total_s.to_bits(), o.outcome.total_s.to_bits());
    }

    // JSON carries the frontier and the per-platform feasibility.
    let json = report.to_json();
    assert!(json.contains("\"pareto_frontier\""));
    assert!(json.contains("\"platforms\""));
    assert!(json.contains("\"pynq-z2\""));
}

/// The joint program sweep has the same portfolio shape: per-kernel
/// backends memoized on (kernel, clock, backend key), frontier across
/// boards.
#[test]
fn program_portfolio_sweeps_the_catalog() {
    use cfdfpga::flow::dse::{DseGrid, ProgramDseEngine};
    let src = cfdfpga::cfdlang::examples::axpy_chain(4);
    let engine = ProgramDseEngine::prepare(&src, &ProgramOptions::default()).unwrap();
    let grid = DseGrid {
        k: vec![1, 4],
        batch: vec![1],
        sharing: vec![true],
        decoupled: vec![true],
        partition: vec![1],
    };
    let catalog = Platform::catalog();
    let report = engine.run_portfolio(&catalog, &grid, 2, 1_000);
    let rungs: usize = catalog.iter().map(|p| p.clock_ladder_mhz.len()).sum();
    assert_eq!(report.evaluated, rungs * 2);
    let mut clocks: Vec<u64> = catalog
        .iter()
        .flat_map(|p| p.clock_ladder_mhz.iter().map(|c| c.to_bits()))
        .collect();
    clocks.sort_unstable();
    clocks.dedup();
    // One backend per (clock, key) per kernel of the 2-kernel chain;
    // every evaluation looks up one memoized backend per kernel.
    assert_eq!(report.backend_compiles, clocks.len() * 2);
    assert_eq!(
        report.backend_reuses,
        report.evaluated * 2 - report.backend_compiles
    );
    assert!(report.feasible_platforms().len() >= 3);
    assert!(report.pareto_frontier().len() >= 3);
}

/// Invalid program replications are structured errors, not panics —
/// the program twin of `invalid_replication_shape_is_a_flow_error`.
#[test]
fn invalid_program_replication_is_a_flow_error() {
    use cfdfpga::sysgen::ProgramSystemConfig;
    let src = cfdfpga::cfdlang::examples::axpy_chain(3);
    let bad_shape = ProgramOptions {
        system: Some(ProgramSystemConfig {
            ks: vec![3, 3],
            m: 5,
        }),
        ..Default::default()
    };
    match ProgramFlow::compile(&src, &bad_shape).unwrap_err() {
        FlowError::Backend(msg) => assert!(msg.contains("invalid replication")),
        other => panic!("expected Backend error, got {other}"),
    }
    let wrong_len = ProgramOptions {
        system: Some(ProgramSystemConfig::uniform(2, 2, 3)),
        ..Default::default()
    };
    match ProgramFlow::compile(&src, &wrong_len).unwrap_err() {
        FlowError::Backend(msg) => assert!(msg.contains("stages")),
        other => panic!("expected Backend error, got {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite property: every configuration `enumerate_configs`
    /// accepts fits its platform's resources on ALL catalog boards
    /// (Eq. (3) never violated), and every power-of-two request outside
    /// the enumerated set returns the structured error instead of
    /// panicking.
    #[test]
    fn enumerated_configs_always_fit_their_platform(
        p in 3usize..6,
        sharing in proptest::bool::ANY,
        k_exp in 0u32..7,
        batch_exp in 0u32..3,
    ) {
        let src = cfdfpga::cfdlang::examples::inverse_helmholtz(p);
        let mut base = FlowOptions::default();
        base.memory.sharing = sharing;
        let engine = DseEngine::prepare(&src, &base).unwrap();
        let be = engine.pipeline().backend(engine.scheduled(), &base);
        let k = 1usize << k_exp;
        let m = k << batch_exp;
        for platform in Platform::catalog() {
            let configs = sysgen::enumerate_configs(&platform, &be.hls_report, &be.memory);
            for cfg in &configs {
                let host = sysgen::HostProgram::placeholder(*cfg);
                let d = sysgen::SystemDesign::build(&platform, &be.hls_report, &be.memory, *cfg, host)
                    .expect("enumerated config must build");
                let (l, f, ds, br) = d.slack();
                prop_assert!(l >= 0 && f >= 0 && ds >= 0 && br >= 0,
                    "{}: Eq. (3) violated for {:?}", platform.id, cfg);
                prop_assert!(d.utilization() <= 1.0 + 1e-12);
            }
            // A request for (k, m): either enumerated (system builds) or
            // a structured DoesNotFit — never a panic.
            let cfg = SystemConfig { k, m };
            let mut opts = FlowOptions::for_platform(platform.clone());
            opts.memory.sharing = sharing;
            opts.system = Some(cfg);
            let enumerable = m <= 64; // the enumerators cap k, m at 64
            match engine.pipeline().system(&be, &opts) {
                Ok(stage) => {
                    prop_assert!(!enumerable || configs.contains(&cfg),
                        "{}: built a non-enumerated config {:?}", platform.id, cfg);
                    let d = stage.system.expect("built system present");
                    let (l, f, ds, br) = d.slack();
                    prop_assert!(l >= 0 && f >= 0 && ds >= 0 && br >= 0);
                }
                Err(FlowError::DoesNotFit { k: ek, m: em, board }) => {
                    prop_assert!(!configs.contains(&cfg),
                        "{}: rejected an enumerated config {:?}", platform.id, cfg);
                    prop_assert_eq!((ek, em), (k, m));
                    prop_assert_eq!(&board, &platform.board.name);
                }
                Err(other) => prop_assert!(false, "unexpected error: {}", other),
            }
        }
    }

    /// The program enumerators obey the same soundness on every board.
    #[test]
    fn enumerated_program_designs_always_fit(p in 3usize..5) {
        let src = cfdfpga::cfdlang::examples::simulation_step(p);
        let art = ProgramFlow::compile(&src, &program_options(Platform::zcu106())).unwrap();
        let stages: Vec<(String, hls::HlsReport)> = art
            .names
            .iter()
            .zip(&art.kernels)
            .map(|(n, a)| (n.clone(), a.hls_report.renamed(n.clone())))
            .collect();
        for platform in Platform::catalog() {
            for d in sysgen::enumerate_program_designs(&platform, &stages, &art.memory) {
                let (l, f, ds, br) = d.slack();
                prop_assert!(l >= 0 && f >= 0 && ds >= 0 && br >= 0,
                    "{}: Eq. (3) violated for {:?}", platform.id, d.config);
            }
        }
    }
}
