//! The staged-pipeline acceptance gate: stage composition must be
//! artifact-identical to the monolithic facade, and a design-space sweep
//! must compile the shared stages exactly once no matter how many points
//! or worker threads it uses.

use cfdfpga::flow::dse::{DseEngine, DseGrid, DsePoint};
use cfdfpga::flow::pipeline::Pipeline;
use cfdfpga::flow::{Flow, FlowOptions};

/// Composing the five stages by hand produces artifacts identical to
/// `Flow::compile` — the pipeline refactor changed the structure of the
/// flow, not its meaning.
#[test]
fn pipeline_stages_compose_to_monolith_artifacts() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(5);
    let opts = FlowOptions::default();

    let mono = Flow::compile(&src, &opts).unwrap();

    let p = Pipeline::new();
    let fe = p.frontend(&src).unwrap();
    let me = p.middle_end(&fe, &opts).unwrap();
    let sc = p.schedule(&me, &opts);
    let be = p.backend(&sc, &opts);
    let sys = p.system(&be, &opts).unwrap();
    let staged = cfdfpga::flow::Artifacts::assemble(&fe, &sc, be, sys, &opts);

    assert_eq!(staged.typed, mono.typed);
    assert_eq!(staged.module, mono.module);
    assert_eq!(staged.schedule, mono.schedule);
    assert_eq!(staged.kernel, mono.kernel);
    assert_eq!(staged.c_source, mono.c_source);
    assert_eq!(staged.hls_report, mono.hls_report);
    assert_eq!(staged.mnemosyne_config, mono.mnemosyne_config);
    assert_eq!(staged.memory, mono.memory);
    assert_eq!(staged.host_source, mono.host_source);
    assert_eq!(staged.system, mono.system);

    // Every stage ran exactly once on this pipeline.
    let c = p.counters();
    assert_eq!(
        (c.frontend, c.middle_end, c.schedule, c.backend, c.system),
        (1, 1, 1, 1, 1)
    );
}

/// The paper's evaluation sweep: ≥ 16 configurations on the paper
/// kernel, frontend/middle end compiled exactly once (the acceptance
/// criterion behind `cfdc explore helmholtz:11 --grid --jobs 4`).
#[test]
fn dse_sweep_compiles_shared_stages_exactly_once() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(11);
    let engine = DseEngine::prepare(&src, &FlowOptions::default()).unwrap();
    let report = engine.run(&DseGrid::default(), 4, 2_000);

    assert!(
        report.evaluated >= 16,
        "grid must sweep at least 16 configurations, got {}",
        report.evaluated
    );
    assert_eq!(report.counts.frontend, 1, "frontend must compile once");
    assert_eq!(report.counts.middle_end, 1, "middle end must compile once");
    assert_eq!(report.counts.schedule, 1, "scheduler must run once");
    // Backends are memoized on (sharing, decoupled, partition): the
    // default grid's 32 points need only 4 backend compilations.
    assert_eq!(report.counts.backend, report.backend_compiles);
    assert_eq!(report.backend_compiles, 4);
    assert_eq!(
        report.backend_reuses,
        report.evaluated - report.backend_compiles
    );
    assert_eq!(report.counts.system, report.evaluated);
    // Per-point timing is tracked for the perf baseline.
    assert!(report.eval_total_s > 0.0);
    assert!(report.eval_max_s >= report.eval_mean_s);

    // Paper headline: with sharing the 16-kernel configuration fits.
    assert!(report.feasible >= 16);
    let best = report.best().expect("some configuration fits");
    assert!(best.feasible && best.throughput_eps > 0.0);

    // Ranking: feasible outcomes precede infeasible ones and are sorted
    // by throughput.
    let first_infeasible = report
        .outcomes
        .iter()
        .position(|o| !o.feasible)
        .unwrap_or(report.outcomes.len());
    assert!(report.outcomes[..first_infeasible]
        .windows(2)
        .all(|w| w[0].throughput_eps >= w[1].throughput_eps));
    assert!(report.outcomes[first_infeasible..]
        .iter()
        .all(|o| !o.feasible));

    // The sharing axis really reaches Mnemosyne: at equal (k, m,
    // decoupled) the shared PLM subsystem must be smaller.
    let find = |sharing: bool| {
        report
            .outcomes
            .iter()
            .find(|o| {
                o.point.k == 1 && o.point.m == 1 && o.point.decoupled && o.point.sharing == sharing
            })
            .expect("grid covers both sharing settings at k=m=1")
    };
    assert!(find(true).plm_brams < find(false).plm_brams);
}

/// A single evaluated point agrees with an independent monolithic
/// compile of the same configuration.
#[test]
fn dse_point_matches_monolithic_compile() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(5);
    let engine = DseEngine::prepare(&src, &FlowOptions::default()).unwrap();
    let point = DsePoint {
        k: 2,
        m: 4,
        sharing: false,
        decoupled: true,
        partition: 1,
    };
    let outcome = engine.evaluate(&point, 500);
    assert!(outcome.feasible);

    let mono = Flow::compile(&src, &engine.options_for(&point)).unwrap();
    let design = mono.system.expect("fits");
    assert_eq!(outcome.luts, design.luts);
    assert_eq!(outcome.ffs, design.ffs);
    assert_eq!(outcome.dsps, design.dsps);
    assert_eq!(outcome.brams, design.brams);
    assert_eq!(outcome.plm_brams, mono.memory.brams);
    assert_eq!(outcome.latency_cycles, mono.hls_report.latency_cycles);
}

/// `artifacts_for` (the bench harness path) is artifact-identical to a
/// fresh monolithic compile for backend/system option variants.
#[test]
fn engine_artifacts_match_monolith_for_variants() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(4);
    let base = FlowOptions::default();
    let engine = DseEngine::prepare(&src, &base).unwrap();
    for decoupled in [true, false] {
        for sharing in [true, false] {
            let mut opts = base.clone();
            opts.decoupled = decoupled;
            opts.memory.sharing = sharing;
            let shared = engine.artifacts_for(&opts).unwrap();
            let mono = Flow::compile(&src, &opts).unwrap();
            assert_eq!(shared.c_source, mono.c_source);
            assert_eq!(shared.hls_report, mono.hls_report);
            assert_eq!(shared.memory, mono.memory);
            assert_eq!(shared.system, mono.system);
            assert_eq!(shared.host_source, mono.host_source);
        }
    }
    // Four variants, one frontend/middle-end compilation.
    assert_eq!(engine.pipeline().counters().frontend, 1);
    assert_eq!(engine.pipeline().counters().middle_end, 1);
}

/// The JSON emitter produces structurally sound output with every
/// outcome present.
#[test]
fn dse_json_is_well_formed() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(4);
    let engine = DseEngine::prepare(&src, &FlowOptions::default()).unwrap();
    let grid = DseGrid {
        k: vec![1, 2],
        batch: vec![1, 2],
        sharing: vec![true, false],
        decoupled: vec![true],
        partition: vec![1],
    };
    let report = engine.run(&grid, 2, 200);
    let json = report.to_json();
    assert_eq!(json.matches("\"k\":").count(), report.evaluated);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"stage_invocations\": {\"frontend\": 1, \"middle_end\": 1"));
}

/// Partitioning through the DSE axis reaches the memory generator, as
/// the seed's monolithic partition test demanded.
#[test]
fn partition_axis_reaches_memory_subsystem() {
    let src = cfdfpga::cfdlang::examples::inverse_helmholtz(5);
    let engine = DseEngine::prepare(&src, &FlowOptions::default()).unwrap();
    let base = DsePoint {
        k: 1,
        m: 1,
        sharing: true,
        decoupled: true,
        partition: 1,
    };
    let part = DsePoint {
        partition: 3,
        ..base
    };
    let plain = engine.evaluate(&base, 100);
    let banked = engine.evaluate(&part, 100);
    assert!(
        banked.plm_brams > plain.plm_brams,
        "multi-port PLM must cost extra banks: {} vs {}",
        banked.plm_brams,
        plain.plm_brams
    );
}
