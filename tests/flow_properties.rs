//! Property-based tests of the whole flow: randomly generated tensor
//! programs must compile, verify bit-exactly against the interpreter,
//! and preserve semantics under factorization.

use cfdfpga::flow::{Flow, FlowOptions};
use proptest::prelude::*;
use std::collections::HashMap;
use teil::interp::{inputs_from, Interpreter, Tensor};

/// Random small contraction program: o = A # B . [[a b]] with compatible
/// random shapes, plus an optional pointwise epilogue.
fn contraction_program(n1: usize, n2: usize, epilogue: bool) -> String {
    // A : [n1 n2], B : [n2], o = A # B . [[1 2]] : [n1]
    let mut src =
        format!("var input A : [{n1} {n2}]\nvar input B : [{n2}]\nvar input C : [{n1}]\n");
    if epilogue {
        src.push_str(&format!("var w : [{n1}]\nvar output o : [{n1}]\n"));
        src.push_str("w = A # B . [[1 2]]\no = w * C + w\n");
    } else {
        src.push_str(&format!("var output o : [{n1}]\n"));
        src.push_str("o = A # B . [[1 2]]\n");
    }
    src
}

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    Tensor::from_fn(shape, |_| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random contraction programs flow end-to-end and verify bitexact.
    #[test]
    fn random_contractions_verify(
        n1 in 2usize..6,
        n2 in 2usize..6,
        epilogue in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let src = contraction_program(n1, n2, epilogue);
        let art = Flow::compile(&src, &FlowOptions::default()).unwrap();
        let v = art.verify(1, seed).unwrap();
        prop_assert!(v.bitexact);
    }

    /// Factorization never changes results beyond FP reassociation.
    #[test]
    fn factorization_preserves_helmholtz(n in 2usize..6, seed in 0u64..100) {
        let src = cfdfpga::cfdlang::examples::inverse_helmholtz(n);
        let typed = cfdfpga::cfdlang::check(&cfdfpga::cfdlang::parse(&src).unwrap()).unwrap();
        let naive = teil::lower(&typed).unwrap();
        let fact = teil::transform::factorize(&naive);
        let inputs = inputs_from(vec![
            ("S", rand_tensor(&[n, n], seed)),
            ("D", rand_tensor(&[n, n, n], seed + 1)),
            ("u", rand_tensor(&[n, n, n], seed + 2)),
        ]);
        let e1 = Interpreter::new(&naive).run(&inputs).unwrap();
        let e2 = Interpreter::new(&fact).run(&inputs).unwrap();
        let v1 = e1.value(&naive, "v").unwrap();
        let v2 = e2.value(&fact, "v").unwrap();
        prop_assert!(v1.max_rel_diff(v2) < 1e-10, "diff {}", v1.max_rel_diff(v2));
    }

    /// The generated C program computes the same function regardless of
    /// sharing/decoupling options (memory layout must not leak into
    /// values).
    #[test]
    fn options_do_not_change_semantics(
        n in 2usize..5,
        decoupled in proptest::bool::ANY,
        seed in 0u64..100,
    ) {
        let src = cfdfpga::cfdlang::examples::matrix_sandwich(n);
        let art = Flow::compile(
            &src,
            &FlowOptions { decoupled, ..Default::default() },
        )
        .unwrap();
        let mut mem: HashMap<String, Vec<f64>> = HashMap::new();
        for p in &art.kernel.params {
            mem.insert(p.name.clone(), vec![0.0; p.words]);
        }
        mem.insert("S".into(), rand_tensor(&[n, n], seed).data);
        mem.insert("A".into(), rand_tensor(&[n, n], seed + 7).data);
        let s = Tensor { shape: vec![n, n], data: mem["S"].clone() };
        let a = Tensor { shape: vec![n, n], data: mem["A"].clone() };
        cgen::run_kernel(&art.kernel, &mut mem).unwrap();
        let ex = Interpreter::new(&art.module)
            .run(&inputs_from(vec![("S", s), ("A", a)]))
            .unwrap();
        let expect = ex.value(&art.module, "o").unwrap();
        prop_assert_eq!(&mem["o"], &expect.data);
    }

    /// Eq. (3): for any feasible configuration, doubling m keeps BRAM
    /// monotonicity, and the maximal k=m is indeed maximal.
    #[test]
    fn eq3_maximality(sharing in proptest::bool::ANY) {
        let src = cfdfpga::cfdlang::examples::inverse_helmholtz(5);
        let art = Flow::compile(
            &src,
            &FlowOptions {
                memory: cfdfpga::mnemosyne::MemoryOptions {
                    sharing,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let board = cfdfpga::sysgen::Platform::zcu106();
        let max = cfdfpga::sysgen::max_equal_config(&board, &art.hls_report, &art.memory).unwrap();
        // The next power of two must not fit.
        let next = cfdfpga::sysgen::SystemConfig { k: max.k * 2, m: max.m * 2 };
        let host = cfdfpga::sysgen::HostProgram::placeholder(next);
        prop_assert!(cfdfpga::sysgen::SystemDesign::build(
            &board, &art.hls_report, &art.memory, next, host
        )
        .is_none());
    }
}
