//! Differential properties of the incremental compile cache and the
//! parallel compile fan-out: a warm-cache compile must be bit-identical
//! to a cold one across option/platform combinations, on-disk entries
//! must survive a process boundary (modeled as a fresh cache over the
//! same directory), and `--jobs 1` vs `--jobs N` must not change a
//! single artifact byte.

use cfdfpga::flow::cache::{write_entry, CachedSchedule, CompileCache};
use cfdfpga::flow::program::{ProgramFlow, ProgramOptions};
use cfdfpga::flow::{Artifacts, Flow, FlowOptions};
use cfdfpga::sysgen::Platform;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Canonical rendering of everything a compile produces. The
/// scheduling-stage products go through the cache's own serializer
/// (which is a canonical printer), so `HashMap` iteration order and
/// memoization cells never leak into the comparison.
fn canonical(art: &Artifacts) -> String {
    let entry = CachedSchedule {
        schedule: Arc::clone(&art.schedule),
        liveness: Arc::clone(&art.liveness),
        compat: Arc::clone(&art.compat),
    };
    format!(
        "{}\n---c---\n{}\n---host---\n{}\n---hls---\n{:?}\n---mem---\n{:?}\n---sys---\n{:?}",
        write_entry(&entry),
        art.c_source,
        art.host_source,
        art.hls_report,
        art.memory,
        art.system,
    )
}

fn canonical_program(art: &cfdfpga::flow::ProgramArtifacts) -> String {
    let mut s = String::new();
    for (name, k) in art.names.iter().zip(&art.kernels) {
        s.push_str(&format!("=== {name} ===\n{}\n", canonical(k)));
    }
    s.push_str(&format!(
        "---program---\n{}\n{:?}\n{:?}",
        art.host_source, art.memory, art.system
    ));
    s
}

/// An option combination drawn from the axes the cache key must cover.
fn options_combo(board: usize, permute: bool, decoupled: bool, sharing: bool) -> FlowOptions {
    let catalog = Platform::catalog();
    let platform = catalog[board % catalog.len()].clone();
    let mut opts = FlowOptions {
        decoupled,
        ..FlowOptions::default()
    };
    opts.scheduler.permute = permute;
    opts.memory.sharing = sharing;
    opts.hls.clock_mhz = platform.default_clock_mhz;
    opts.platform = platform;
    opts
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per proptest case.
fn scratch_dir() -> std::path::PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("cfdcache-prop-{}-{}", std::process::id(), n));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Warm-cache compiles are bit-identical to cold ones for every
    /// generated (source, platform, scheduler, memory) combination, and
    /// the cache actually served the warm run.
    #[test]
    fn warm_cache_compile_is_bit_identical(
        n in 3usize..6,
        board in 0usize..8,
        permute in proptest::bool::ANY,
        decoupled in proptest::bool::ANY,
        sharing in proptest::bool::ANY,
    ) {
        let src = cfdfpga::cfdlang::examples::inverse_helmholtz(n);
        let opts = options_combo(board, permute, decoupled, sharing);
        let cold = Flow::compile(&src, &opts).unwrap();

        let cache = Arc::new(CompileCache::in_memory());
        let first = Flow::compile_cached(&src, &opts, Arc::clone(&cache)).unwrap();
        let warm = Flow::compile_cached(&src, &opts, Arc::clone(&cache)).unwrap();

        prop_assert_eq!(first.timings.cache.misses, 1);
        prop_assert_eq!(warm.timings.cache.hits, 1, "second compile must hit");
        prop_assert_eq!(canonical(&cold), canonical(&first));
        prop_assert_eq!(canonical(&cold), canonical(&warm));
    }

    /// On-disk entries revive across a process boundary (a fresh cache
    /// over the same directory) and still reproduce the cold artifacts
    /// byte for byte.
    #[test]
    fn disk_warm_compile_is_bit_identical(
        n in 3usize..6,
        board in 0usize..8,
        permute in proptest::bool::ANY,
    ) {
        let src = cfdfpga::cfdlang::examples::inverse_helmholtz(n);
        let opts = options_combo(board, permute, true, true);
        let cold = Flow::compile(&src, &opts).unwrap();

        let dir = scratch_dir();
        let writer = Arc::new(CompileCache::with_dir(&dir).unwrap());
        Flow::compile_cached(&src, &opts, writer).unwrap();

        let reader = Arc::new(CompileCache::with_dir(&dir).unwrap());
        let warm = Flow::compile_cached(&src, &opts, Arc::clone(&reader)).unwrap();
        prop_assert_eq!(warm.timings.cache.disk_hits, 1, "must be served from disk");
        prop_assert_eq!(warm.timings.cache.misses, 0);
        prop_assert_eq!(canonical(&cold), canonical(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The parallel program compile (`jobs > 1`) produces artifacts
    /// bit-identical to the fully serial one, for programs and worker
    /// counts alike.
    #[test]
    fn parallel_program_compile_is_deterministic(
        p in 3usize..6,
        jobs in 2usize..5,
        cross_sharing in proptest::bool::ANY,
    ) {
        let src = cfdfpga::cfdlang::examples::simulation_step(p);
        let serial = ProgramOptions {
            flow: FlowOptions { jobs: 1, ..FlowOptions::default() },
            cross_sharing,
            system: None,
        };
        let parallel = ProgramOptions {
            flow: FlowOptions { jobs, ..serial.flow.clone() },
            ..serial.clone()
        };
        let a = ProgramFlow::compile(&src, &serial).unwrap();
        let b = ProgramFlow::compile(&src, &parallel).unwrap();
        prop_assert_eq!(canonical_program(&a), canonical_program(&b));
    }
}

/// A cached *program* compile: per-kernel schedule stages are memoized
/// individually, so a warm compile of a 3-kernel program reports three
/// hits — and the artifacts stay bit-identical.
#[test]
fn warm_program_compile_hits_per_kernel_and_matches() {
    let src = cfdfpga::cfdlang::examples::simulation_step(4);
    let opts = ProgramOptions::default();
    let cold = ProgramFlow::compile(&src, &opts).unwrap();

    let cache = Arc::new(CompileCache::in_memory());
    let first = ProgramFlow::compile_cached(&src, &opts, Arc::clone(&cache)).unwrap();
    let warm = ProgramFlow::compile_cached(&src, &opts, Arc::clone(&cache)).unwrap();

    assert_eq!(first.timings.cache.misses, 3);
    assert_eq!(first.timings.cache.stores, 3);
    // Counters accumulate on the shared cache: 3 misses then 3 hits.
    assert_eq!(warm.timings.cache.hits, 3);
    assert_eq!(canonical_program(&cold), canonical_program(&first));
    assert_eq!(canonical_program(&cold), canonical_program(&warm));
}

/// Changing any keyed input (source, scheduler options, platform) must
/// miss rather than serve a stale entry.
#[test]
fn cache_never_serves_across_changed_inputs() {
    let cache = Arc::new(CompileCache::in_memory());
    let base = FlowOptions::default();
    let src5 = cfdfpga::cfdlang::examples::inverse_helmholtz(5);
    let src6 = cfdfpga::cfdlang::examples::inverse_helmholtz(6);

    Flow::compile_cached(&src5, &base, Arc::clone(&cache)).unwrap();
    // Different source: miss.
    let a = Flow::compile_cached(&src6, &base, Arc::clone(&cache)).unwrap();
    assert_eq!(a.timings.cache.hits, 0);
    // Different scheduler options: miss.
    let mut no_permute = base.clone();
    no_permute.scheduler.permute = false;
    let b = Flow::compile_cached(&src5, &no_permute, Arc::clone(&cache)).unwrap();
    assert_eq!(b.timings.cache.hits, 0);
    // Different platform: miss.
    let mut other_board = base.clone();
    other_board.platform = Platform::catalog()[1].clone();
    other_board.hls.clock_mhz = other_board.platform.default_clock_mhz;
    let c = Flow::compile_cached(&src5, &other_board, Arc::clone(&cache)).unwrap();
    assert_eq!(c.timings.cache.hits, 0);
    // Unchanged inputs: hit.
    let d = Flow::compile_cached(&src5, &base, Arc::clone(&cache)).unwrap();
    assert_eq!(d.timings.cache.hits, 1);
}
