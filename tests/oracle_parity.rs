//! Acceptance gate for the simplex feasibility oracle (PR 8).
//!
//! Two obligations, both differential against the legacy pure-FM path:
//!
//! 1. **Corpus agreement** — on the exact systems `Liveness::analyze`
//!    produces for the simstep program (the 64-point `simulation_step(4)`
//!    cube), the layered oracle and the FM reference return the same
//!    emptiness verdict, memoized or cold.
//! 2. **Bit-identity** — forcing the FM oracle (the `POLYHEDRA_ORACLE=fm`
//!    escape hatch, exercised here via `set_oracle_mode`) and compiling
//!    the same program yields bit-identical artifacts and bit-identical
//!    simulated tensors. The oracle swap is a pure performance change.
//!
//! The mode toggle is process-global, so everything that flips it lives
//! in ONE test function — the other test in this binary never touches
//! the mode and is correct under either setting.

use cfdfpga::flow::program::{ProgramFlow, ProgramOptions};
use cfdfpga::polyhedra::{self, OracleMode};
use std::collections::HashMap;

fn compile_simstep() -> cfdfpga::flow::program::ProgramArtifacts {
    let src = cfdfpga::cfdlang::examples::simulation_step(4);
    ProgramFlow::compile(&src, &ProgramOptions::default()).unwrap()
}

/// Chained simulated tensors of a compiled program (actual numeric
/// outputs, not timings — the strongest bit-identity witness we have).
fn simulated_tensors(
    prog: &cfdfpga::flow::program::ProgramArtifacts,
    seed: u64,
) -> HashMap<String, Vec<f64>> {
    let modules: Vec<&cfdfpga::teil::Module> = prog.kernels.iter().map(|a| &*a.module).collect();
    let kernels: Vec<&cfdfpga::cgen::CKernel> = prog.kernels.iter().map(|a| &a.kernel).collect();
    let external = cfdfpga::zynq::random_program_inputs(&modules, seed);
    cfdfpga::zynq::run_program_chain(&prog.names, &modules, &kernels, &external).unwrap()
}

/// Every liveness/access system the simstep kernels generate must get
/// the same verdict from the layered oracle and the FM reference — and
/// repeated (memo-served) queries must not drift.
#[test]
fn simstep_liveness_corpus_agrees_with_fm() {
    let prog = compile_simstep();
    let mut checked = 0usize;
    for art in &prog.kernels {
        let lv = &art.liveness;
        let sets = lv
            .live
            .values()
            .chain(lv.writes_at.values())
            .chain(lv.reads_at.values());
        for set in sets {
            for part in &set.parts {
                let sys = part.system();
                let fm = sys.is_empty_via_fm();
                assert_eq!(sys.is_empty(), fm, "corpus divergence on {:?}", sys);
                // The repeat is served from the verdict memo.
                assert_eq!(sys.is_empty(), fm, "memoized repeat diverged on {:?}", sys);
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "corpus was empty — liveness sets missing");
}

/// Forcing the legacy FM oracle must not change a single artifact byte
/// or simulated tensor value: the oracle layer is decision-equivalent,
/// so every downstream product is bit-identical.
#[test]
fn artifacts_bit_identical_under_forced_fm_oracle() {
    polyhedra::set_oracle_mode(OracleMode::Fm);
    assert_eq!(polyhedra::oracle_signature(), "oracle=fm");
    let fm = compile_simstep();
    let fm_tensors = simulated_tensors(&fm, 2024);

    polyhedra::set_oracle_mode(OracleMode::Simplex);
    assert_eq!(polyhedra::oracle_signature(), "oracle=simplex-v1");
    let sx = compile_simstep();
    let sx_tensors = simulated_tensors(&sx, 2024);

    assert_eq!(fm.names, sx.names);
    for ((name, a), b) in fm.names.iter().zip(&fm.kernels).zip(&sx.kernels) {
        assert_eq!(a.module, b.module, "module of '{name}'");
        assert_eq!(a.schedule, b.schedule, "schedule of '{name}'");
        assert_eq!(a.kernel, b.kernel, "loop program of '{name}'");
        assert_eq!(a.c_source, b.c_source, "C source of '{name}'");
        assert_eq!(a.hls_report, b.hls_report, "HLS report of '{name}'");
        assert_eq!(
            a.mnemosyne_config, b.mnemosyne_config,
            "mnemosyne config of '{name}'"
        );
        assert_eq!(a.memory, b.memory, "memory subsystem of '{name}'");
    }
    assert_eq!(fm.memory, sx.memory, "program memory");
    assert_eq!(fm.host_source, sx.host_source, "program host source");
    assert_eq!(fm_tensors, sx_tensors, "simulated tensors");
}
