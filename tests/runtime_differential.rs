//! Differential testing of the batched multi-request runtime.
//!
//! Property-based request streams (random kernel, random sizes, random
//! arrival order, random batch policy) are served through
//! `runtime::serve` and checked against the sequential references:
//!
//! * **Functional identity** — the batched runtime's output tensors are
//!   bit-identical to running every request alone through the generated
//!   kernel chain *and* to the chained reference interpreter; batching
//!   shares hardware, never data.
//! * **Tick identity** — with batching disabled (one request per round,
//!   no DMA overlap) the runtime's tick counts are *exactly* the
//!   sequential `simulate_program` schedule: each request costs one
//!   round, rounds chain back to back from each request's arrival, and
//!   the closed-backlog makespan is precisely `N × round`.
//! * **Throughput** — a closed backlog served with `Auto` batching
//!   dispatches `ceil(N / m)` rounds instead of `N`, an exact `m×`
//!   rate multiplier when rounds stay full.

use std::collections::HashMap;

use cfd_core::program::{ProgramFlow, ProgramOptions};
use proptest::prelude::*;
use runtime::{generate_requests, serve, Arrival, BatchPolicy, Request, RuntimeOptions};
use sysgen::ProgramSystemConfig;
use teil::ir::Module;
use zynq::des::secs;
use zynq::SimConfig;

/// The generated-kernel pool the properties draw from: index, size
/// bounds chosen so every case compiles and executes in milliseconds.
fn source_for(choice: usize, size: usize) -> String {
    match choice % 5 {
        0 => cfdlang::examples::axpy(2 + size),
        1 => cfdlang::examples::matrix_sandwich(2 + size),
        2 => cfdlang::examples::inverse_helmholtz(2 + size),
        3 => cfdlang::examples::axpy_chain(2 + size),
        _ => cfdlang::examples::simulation_step(2 + size),
    }
}

struct Compiled {
    art: cfd_core::ProgramArtifacts,
}

impl Compiled {
    fn new(source: &str, system: Option<ProgramSystemConfig>) -> Compiled {
        let opts = ProgramOptions {
            system,
            ..Default::default()
        };
        Compiled {
            art: ProgramFlow::compile(source, &opts).expect("test kernel compiles"),
        }
    }

    fn modules(&self) -> Vec<&Module> {
        self.art.kernels.iter().map(|a| &*a.module).collect()
    }

    fn kernels(&self) -> Vec<&cgen::CKernel> {
        self.art.kernels.iter().map(|a| &a.kernel).collect()
    }

    fn system(&self) -> &sysgen::MultiSystemDesign {
        self.art.system.as_ref().expect("system fits zcu106")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batched runtime outputs are bit-identical to the sequential
    /// references — both the generated-chain path and the reference
    /// interpreter — for every request, under every batch policy.
    #[test]
    fn outputs_bit_identical_to_sequential_references(
        choice in 0usize..5,
        size in 0usize..2,
        n in 2usize..5,
        policy in 0usize..3,
        overlap in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let src = source_for(choice, size);
        let c = Compiled::new(&src, None);
        let modules = c.modules();
        let kernels = c.kernels();
        let requests = generate_requests(&modules, n, &Arrival::Closed, seed).unwrap();
        let batch = match policy {
            0 => BatchPolicy::Auto,
            1 => BatchPolicy::Fixed(2),
            _ => BatchPolicy::Disabled,
        };
        let opts = RuntimeOptions {
            requests: n,
            batch,
            overlap_dma: overlap,
            execute: true,
            seed,
            ..Default::default()
        };
        let served = serve(c.system(), &c.art.names, &modules, &kernels, &requests, &opts).unwrap();
        prop_assert_eq!(served.outputs.len(), n);
        for (req, got) in requests.iter().zip(&served.outputs) {
            // Sequential hardware-path reference: this request alone.
            let solo = zynq::run_program_chain(&c.art.names, &modules, &kernels, &req.inputs).unwrap();
            prop_assert_eq!(&solo, got, "request {} diverged from solo chain", req.id);
            // Independent reference: the chained interpreter, bit for bit.
            let reference = zynq::run_program_reference(&c.art.names, &modules, &req.inputs).unwrap();
            prop_assert_eq!(reference.len(), got.len());
            for (key, tensor) in &reference {
                let g = &got[key];
                prop_assert_eq!(tensor.data.len(), g.len());
                for (a, b) in tensor.data.iter().zip(g) {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "request {} output '{}' not bit-identical", req.id, key
                    );
                }
            }
        }
    }

    /// With batching disabled the runtime's tick schedule is exactly the
    /// sequential one: every request costs one `simulate_program` round,
    /// chained from its arrival, whatever the arrival order.
    #[test]
    fn disabled_batching_ticks_are_exactly_sequential(
        choice in 0usize..5,
        size in 0usize..2,
        arrivals_ms in proptest::collection::vec(0u64..40, 6),
        seed in 0u64..1_000,
    ) {
        let src = source_for(choice, size);
        let c = Compiled::new(&src, None);
        let modules = c.modules();
        let n = arrivals_ms.len();
        // Arbitrary (unsorted) arrival order, built by hand.
        let requests: Vec<Request> = arrivals_ms
            .iter()
            .enumerate()
            .map(|(id, &ms)| Request {
                id,
                arrival_s: ms as f64 * 1e-3,
                inputs: zynq::random_program_inputs(&modules, seed.wrapping_add(id as u64)),
                tier: 0,
            })
            .collect();
        let opts = RuntimeOptions {
            requests: n,
            batch: BatchPolicy::Disabled,
            overlap_dma: false,
            execute: false,
            ..Default::default()
        };
        let served = serve(c.system(), &c.art.names, &modules, &c.kernels(), &requests, &opts).unwrap();
        let r = &served.report;

        // One sequential simulate_program run = exactly one round.
        let single = c.art.simulate(&SimConfig { elements: 1, ..Default::default() }).unwrap();
        let rt = secs(single.total_s);

        // Fold the sorted arrivals through the sequential schedule.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            requests[a].arrival_s.total_cmp(&requests[b].arrival_s).then(a.cmp(&b))
        });
        let mut now = 0u64;
        let mut expected: Vec<(usize, u64)> = Vec::new();
        for &i in &order {
            let a = secs(requests[i].arrival_s);
            now = now.max(a) + rt;
            expected.push((i, now));
        }
        prop_assert_eq!(r.makespan_ticks, now, "makespan diverged from sequential fold");
        prop_assert_eq!(r.rounds, n);
        prop_assert_eq!(r.exec_ticks, n as u64 * secs(single.exec_s));
        prop_assert_eq!(r.transfer_ticks, n as u64 * secs(single.transfer_s));
        prop_assert_eq!(r.overlapped_ticks, 0);
        for (i, ticks) in expected {
            let trace = &r.traces[i];
            prop_assert_eq!(trace.id, i);
            prop_assert_eq!(secs(trace.completed_s), ticks, "request {} completion", i);
        }
    }

    /// Closed-backlog identity: N queued requests make the makespan
    /// exactly N rounds, fast-forwarded in one multiplication.
    #[test]
    fn closed_backlog_makespan_is_n_rounds(
        choice in 0usize..5,
        n in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let src = source_for(choice, 0);
        let c = Compiled::new(&src, None);
        let modules = c.modules();
        let requests = generate_requests(&modules, n, &Arrival::Closed, seed).unwrap();
        let opts = RuntimeOptions {
            requests: n,
            batch: BatchPolicy::Disabled,
            overlap_dma: false,
            execute: false,
            ..Default::default()
        };
        let r = serve(c.system(), &c.art.names, &modules, &c.kernels(), &requests, &opts)
            .unwrap()
            .report;
        let single = c.art.simulate(&SimConfig { elements: 1, ..Default::default() }).unwrap();
        prop_assert_eq!(r.makespan_ticks, n as u64 * secs(single.total_s));
        prop_assert_eq!(r.fast_forwarded_rounds, n);
    }
}

/// Auto batching on a closed backlog is an exact `m×` rate multiplier
/// while rounds stay full (round cost is fill-independent — the host
/// program always moves `m` PLM sets).
#[test]
fn auto_batching_multiplies_closed_throughput_by_m() {
    let src = cfdlang::examples::axpy_chain(3);
    let c = Compiled::new(&src, Some(ProgramSystemConfig::uniform(2, 4, 2)));
    let m = c.system().config.m;
    assert_eq!(m, 4);
    let modules = c.modules();
    let n = 64;
    let requests = generate_requests(&modules, n, &Arrival::Closed, 9).unwrap();
    let run = |batch, overlap| {
        serve(
            c.system(),
            &c.art.names,
            &modules,
            &c.kernels(),
            &requests,
            &RuntimeOptions {
                requests: n,
                batch,
                overlap_dma: overlap,
                execute: false,
                ..Default::default()
            },
        )
        .unwrap()
        .report
    };
    let seq = run(BatchPolicy::Disabled, false);
    let auto = run(BatchPolicy::Auto, false);
    assert_eq!(seq.rounds, 64);
    assert_eq!(auto.rounds, 16);
    // Exact in tick space: 16 full rounds vs 64.
    assert_eq!(seq.makespan_ticks, auto.makespan_ticks * m as u64);
    // Double-buffered DMA then shaves the transfer tail off as well.
    let olap = run(BatchPolicy::Auto, true);
    assert!(olap.makespan_ticks < auto.makespan_ticks);
    assert!(olap.overlap_fraction > 0.0);
    assert!(olap.throughput_rps > auto.throughput_rps);
}

/// Poisson arrivals: latency percentiles reflect queueing, and the
/// functional outputs stay bit-identical to the solo references.
#[test]
fn poisson_stream_queues_and_stays_bit_identical() {
    let src = cfdlang::examples::simulation_step(3);
    let c = Compiled::new(&src, None);
    let modules = c.modules();
    let kernels = c.kernels();
    // Arrival rate far above the service rate: a queue must build.
    let requests =
        generate_requests(&modules, 24, &Arrival::Poisson { rate_rps: 1.0e4 }, 5).unwrap();
    assert!(requests
        .windows(2)
        .all(|w| w[0].arrival_s <= w[1].arrival_s));
    let opts = RuntimeOptions {
        requests: 24,
        batch: BatchPolicy::Auto,
        overlap_dma: true,
        execute: true,
        ..Default::default()
    };
    let served = serve(
        c.system(),
        &c.art.names,
        &modules,
        &kernels,
        &requests,
        &opts,
    )
    .unwrap();
    let r = &served.report;
    assert!(r.latency_p50_s <= r.latency_p99_s);
    assert!(r.latency_p99_s <= r.latency_max_s);
    // Later arrivals wait behind earlier ones at this rate.
    assert!(r.latency_max_s > r.traces[0].latency_s);
    let mut outputs_by_id: HashMap<usize, &HashMap<String, Vec<f64>>> = HashMap::new();
    for (req, out) in requests.iter().zip(&served.outputs) {
        outputs_by_id.insert(req.id, out);
    }
    for req in &requests {
        let solo = zynq::run_program_chain(&c.art.names, &modules, &kernels, &req.inputs).unwrap();
        assert_eq!(&&solo, outputs_by_id.get(&req.id).unwrap());
    }
}
